// davtrace — inspect, convert, and regression-gate flight-recorder traces
// (src/obs/).
//
// Subcommands:
//   davtrace summarize <trace.json>...   span breakdown (count, total, p50/
//                                        p95/p99 per stage), counter ranges,
//                                        and the alarm/recovery timeline
//   davtrace csv <trace.json> [--out=<path>]
//                                        re-derive the tick-indexed CSV
//                                        (same columns run_experiment writes)
//   davtrace compare <baseline.json> <candidate.json>
//            [--tolerance=<pct>] [--stage=<name>=<pct>]...
//                                        diff two traces' per-stage latency
//                                        percentiles; exit 2 when a stage
//                                        regressed past its threshold (0 =
//                                        zero tolerance). The CI perf gate.
//
// Reads the Chrome trace-event JSON emitted by export_run_trace (and the
// campaign telemetry trace): nothing here depends on which process wrote the
// file, so traces from forked campaign workers summarize identically.
// compare consumes span events when present and falls back to the
// "hist.<stage>" summary rows the campaign fleet trace carries, so it gates
// both per-run and campaign-level traces.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.h"
#include "util/stats.h"

namespace {

using dav::obs::ChromeEvent;
using dav::obs::ChromeTrace;

[[noreturn]] void usage_error(const std::string& what) {
  throw std::runtime_error(
      "davtrace: " + what +
      "\nusage: davtrace summarize <trace.json>...\n"
      "       davtrace csv <trace.json> [--out=<path>]\n"
      "       davtrace compare <baseline.json> <candidate.json>"
      " [--tolerance=<pct>] [--stage=<name>=<pct>]...");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("davtrace: cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Read + parse one trace with errors that name the file and say what is
/// actually wrong — an empty file, a truncated/corrupt one, and valid JSON
/// that simply is not a trace are three different operator mistakes.
ChromeTrace load_trace(const std::string& path) {
  const std::string text = read_file(path);
  if (text.empty()) {
    throw std::runtime_error("davtrace: " + path +
                             " is empty (0 bytes) — expected Chrome "
                             "trace-event JSON (was the producer killed "
                             "mid-write?)");
  }
  ChromeTrace trace;
  try {
    trace = dav::obs::parse_chrome_trace(text);
  } catch (const std::exception& e) {
    throw std::runtime_error("davtrace: " + path + ": " + e.what() +
                             " — file is truncated or not Chrome "
                             "trace-event JSON");
  }
  if (trace.events.empty() && trace.other_data.empty()) {
    throw std::runtime_error("davtrace: " + path +
                             " parsed as JSON but contains no traceEvents "
                             "and no otherData — not a flight-recorder "
                             "trace");
  }
  return trace;
}

struct SpanAgg {
  std::vector<double> dur_us;
  double total_us = 0.0;
};

void summarize_one(const std::string& path) {
  const ChromeTrace trace = load_trace(path);
  std::printf("=== %s ===\n", path.c_str());
  for (const auto& [key, value] : trace.other_data) {
    std::printf("  %s: %s\n", key.c_str(), value.c_str());
  }
  std::printf("  events: %zu\n", trace.events.size());

  // Span breakdown per stage name.
  std::map<std::string, SpanAgg> spans;
  std::map<std::string, std::pair<double, double>> counter_range;
  std::vector<const ChromeEvent*> marks;
  double last_ts = 0.0;
  for (const ChromeEvent& e : trace.events) {
    last_ts = std::max(last_ts, e.ts_us);
    if (e.ph == 'X') {
      SpanAgg& agg = spans[e.name];
      agg.dur_us.push_back(e.dur_us);
      agg.total_us += e.dur_us;
    } else if (e.ph == 'C') {
      auto it = counter_range.find(e.name);
      if (it == counter_range.end()) {
        counter_range.emplace(e.name, std::make_pair(e.value, e.value));
      } else {
        it->second.first = std::min(it->second.first, e.value);
        it->second.second = std::max(it->second.second, e.value);
      }
    } else if (e.ph == 'i') {
      marks.push_back(&e);
    }
  }

  if (!spans.empty()) {
    std::printf("  %-16s %8s %12s %10s %10s %10s\n", "stage", "count",
                "total_ms", "p50_us", "p95_us", "p99_us");
    for (auto& [name, agg] : spans) {
      const std::vector<double>& d = agg.dur_us;
      std::printf("  %-16s %8zu %12.3f %10.1f %10.1f %10.1f\n", name.c_str(),
                  d.size(), agg.total_us / 1e3, dav::percentile(d, 50.0),
                  dav::percentile(d, 95.0), dav::percentile(d, 99.0));
    }
  }
  if (!counter_range.empty()) {
    std::printf("  counters (min..max):\n");
    for (const auto& [name, range] : counter_range) {
      std::printf("    %-20s %g .. %g\n", name.c_str(), range.first,
                  range.second);
    }
  }
  // Alarm / recovery timeline: semantic marks in timestamp order.
  if (!marks.empty()) {
    std::stable_sort(marks.begin(), marks.end(),
                     [](const ChromeEvent* a, const ChromeEvent* b) {
                       return a->ts_us < b->ts_us;
                     });
    std::printf("  timeline:\n");
    for (const ChromeEvent* m : marks) {
      std::printf("    t=%9.3fs tick=%-6d %-20s value=%g\n", m->ts_us / 1e6,
                  m->tick, m->name.c_str(), m->value);
    }
  } else {
    std::printf("  timeline: (no semantic marks — clean run)\n");
  }
  std::printf("  span of trace: %.3f s\n", last_ts / 1e6);
}

// ---- compare: the CI perf gate --------------------------------------------

/// Per-stage latency snapshot, microseconds. Derived from span events when
/// the trace has any; otherwise from the "hist.<stage>" otherData rows
/// ("count,p50_ns,p95_ns,p99_ns") the campaign exporter writes — so compare
/// works on per-run traces and span-free campaign traces alike.
struct StagePercentiles {
  std::size_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

std::map<std::string, StagePercentiles> stage_percentiles(
    const ChromeTrace& trace, const std::string& path) {
  std::map<std::string, StagePercentiles> out;
  std::map<std::string, std::vector<double>> durs;
  for (const ChromeEvent& e : trace.events) {
    if (e.ph == 'X') durs[e.name].push_back(e.dur_us);
  }
  if (!durs.empty()) {
    for (auto& [name, d] : durs) {
      StagePercentiles sp;
      sp.count = d.size();
      sp.p50_us = dav::percentile(d, 50.0);
      sp.p95_us = dav::percentile(d, 95.0);
      sp.p99_us = dav::percentile(d, 99.0);
      out.emplace(name, sp);
    }
    return out;
  }
  for (const auto& [key, value] : trace.other_data) {
    if (key.rfind("hist.", 0) != 0) continue;
    StagePercentiles sp;
    unsigned long long n = 0, p50 = 0, p95 = 0, p99 = 0;
    if (std::sscanf(value.c_str(), "%llu,%llu,%llu,%llu", &n, &p50, &p95,
                    &p99) != 4) {
      throw std::runtime_error("davtrace: " + path + ": malformed " + key +
                               " row \"" + value +
                               "\" — expected count,p50_ns,p95_ns,p99_ns");
    }
    sp.count = static_cast<std::size_t>(n);
    sp.p50_us = static_cast<double>(p50) / 1e3;
    sp.p95_us = static_cast<double>(p95) / 1e3;
    sp.p99_us = static_cast<double>(p99) / 1e3;
    out.emplace(key.substr(5), sp);
  }
  if (out.empty()) {
    throw std::runtime_error("davtrace: " + path +
                             " has no span events and no hist.* summary "
                             "rows — nothing to compare");
  }
  return out;
}

double parse_pct(const std::string& flag, const std::string& val) {
  char* end = nullptr;
  const double v = std::strtod(val.c_str(), &end);
  if (end == val.c_str() || *end != '\0' || v < 0.0) {
    usage_error(flag + " expects a non-negative percent, got '" + val + "'");
  }
  return v;
}

/// Exit 0 when every shared stage's p50/p95/p99 stayed within its threshold,
/// 2 when anything regressed. A stage only in one trace is reported but
/// never fails the gate (campaign shapes legitimately differ in stages).
int compare_traces(const std::vector<std::string>& inputs,
                   double tolerance_pct,
                   const std::map<std::string, double>& stage_tolerance) {
  if (inputs.size() != 2) {
    usage_error("compare takes exactly two trace files (baseline, candidate)");
  }
  const auto base = stage_percentiles(load_trace(inputs[0]), inputs[0]);
  const auto cand = stage_percentiles(load_trace(inputs[1]), inputs[1]);
  std::printf("davtrace compare\n  baseline:  %s\n  candidate: %s\n",
              inputs[0].c_str(), inputs[1].c_str());
  int regressions = 0;
  for (const auto& [name, b] : base) {
    const auto it = cand.find(name);
    if (it == cand.end()) {
      std::printf("  %-16s only in baseline (skipped)\n", name.c_str());
      continue;
    }
    const StagePercentiles& c = it->second;
    const auto tol_it = stage_tolerance.find(name);
    const double tol =
        tol_it != stage_tolerance.end() ? tol_it->second : tolerance_pct;
    const struct { const char* metric; double from; double to; } rows[] = {
        {"p50", b.p50_us, c.p50_us},
        {"p95", b.p95_us, c.p95_us},
        {"p99", b.p99_us, c.p99_us},
    };
    for (const auto& row : rows) {
      const double delta_pct =
          row.from > 0.0 ? 100.0 * (row.to - row.from) / row.from
                         : (row.to > 0.0 ? 100.0 : 0.0);
      const bool regressed = delta_pct > tol;
      std::printf("  %-16s %s %12.1fus -> %12.1fus  %+7.2f%% (tol %g%%)%s\n",
                  name.c_str(), row.metric, row.from, row.to, delta_pct, tol,
                  regressed ? "  REGRESSION" : "");
      if (regressed) ++regressions;
    }
  }
  for (const auto& [name, c] : cand) {
    if (base.find(name) == base.end()) {
      std::printf("  %-16s only in candidate (skipped)\n", name.c_str());
    }
  }
  if (regressions > 0) {
    std::printf("davtrace compare: %d regression(s) past tolerance\n",
                regressions);
    return 2;
  }
  std::printf("davtrace compare: OK\n");
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 2) usage_error("missing subcommand");
  const std::string cmd = argv[1];
  std::vector<std::string> inputs;
  std::string out_path;
  double tolerance_pct = 0.0;  // compare: zero tolerance by default
  std::map<std::string, double> stage_tolerance;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance_pct = parse_pct("--tolerance", arg.substr(12));
    } else if (arg.rfind("--stage=", 0) == 0) {
      const std::string spec = arg.substr(8);
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        usage_error("--stage expects <name>=<pct>, got '" + spec + "'");
      }
      stage_tolerance[spec.substr(0, eq)] =
          parse_pct("--stage", spec.substr(eq + 1));
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unrecognized option '" + arg + "'");
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) usage_error("no input trace files");

  if (cmd == "summarize") {
    for (const std::string& path : inputs) summarize_one(path);
    return 0;
  }
  if (cmd == "compare") {
    return compare_traces(inputs, tolerance_pct, stage_tolerance);
  }
  if (cmd == "csv") {
    if (inputs.size() != 1) usage_error("csv takes exactly one trace file");
    const ChromeTrace trace = load_trace(inputs[0]);
    const std::string csv = dav::obs::run_csv(trace.events);
    if (out_path.empty()) {
      std::fputs(csv.c_str(), stdout);
    } else {
      dav::obs::write_text_file(out_path, csv);
    }
    return 0;
  }
  usage_error("unknown subcommand '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
