#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dav {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(3);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.uniform_index(10)];
  for (int count : seen) EXPECT_GT(count, 50);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(1234);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1() == c2());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(77);
  Rng b(77);
  Rng ca = a.split(5);
  Rng cb = b.split(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, StateRoundTripResumesMidStream) {
  // set_state must land EXACTLY where state() was taken: a checkpointed run
  // resumes every RNG stream mid-sequence, so the continuation has to match
  // the uninterrupted draw-for-draw (ints, doubles, and normals, which keep
  // no cached spare in this generator).
  Rng rng(2022);
  for (int i = 0; i < 37; ++i) rng();
  const std::array<std::uint64_t, 4> snap = rng.state();
  std::vector<std::uint64_t> expected_ints;
  std::vector<double> expected_doubles;
  for (int i = 0; i < 16; ++i) expected_ints.push_back(rng());
  for (int i = 0; i < 16; ++i) expected_doubles.push_back(rng.uniform());
  const double expected_normal = rng.normal();

  Rng resumed(999);  // different seed: state transfer must fully overwrite
  resumed.set_state(snap);
  EXPECT_EQ(resumed.state(), snap);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(resumed(), expected_ints[i]);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(resumed.uniform(), expected_doubles[i]);
  }
  EXPECT_EQ(resumed.normal(), expected_normal);
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace dav
