#include <gtest/gtest.h>

#include "core/ads_system.h"
#include "sim/scenario.h"

namespace dav {
namespace {

struct AdsFixture {
  World world;
  SensorRig rig;
  GpuEngine gpu0, gpu1;
  CpuEngine cpu0, cpu1;

  AdsFixture() : world(make_scenario(ScenarioId::kLeadSlowdown)),
                 rig(front_camera_rig(), 7) {
    gpu0.configure({}, 0);
    gpu1.configure({}, 0);
    cpu0.configure({}, 0);
    cpu1.configure({}, 0);
  }

  AgentConfig config() const {
    AgentConfig cfg;
    cfg.perception.center_cam = front_camera_rig()[1];
    cfg.mission_speed = world.scenario().target_speed;
    cfg.route_start_s = world.scenario().ego_start_s;
    return cfg;
  }

  AdsSystem make(AgentMode mode) {
    const bool dup = mode == AgentMode::kDuplicate;
    return AdsSystem(mode, config(), gpu0, cpu0, dup ? &gpu1 : nullptr,
                     dup ? &cpu1 : nullptr, &world.map());
  }
};

TEST(AdsSystem, DuplicateModeRequiresSecondEngineSet) {
  AdsFixture f;
  EXPECT_THROW(AdsSystem(AgentMode::kDuplicate, f.config(), f.gpu0, f.cpu0,
                         nullptr, nullptr, &f.world.map()),
               std::invalid_argument);
}

TEST(AdsSystem, RoundRobinAlternatesActingAgent) {
  AdsFixture f;
  AdsSystem ads = f.make(AgentMode::kRoundRobin);
  EXPECT_EQ(ads.num_agents(), 2);
  for (int step = 0; step < 6; ++step) {
    const SensorFrame frame = f.rig.capture(f.world, step);
    const auto sr = ads.step(frame, 0.05);
    EXPECT_EQ(sr.acting_agent, step % 2);
    f.world.step(sr.applied, 0.05);
  }
  EXPECT_EQ(ads.agent(0).steps_executed(), 3);
  EXPECT_EQ(ads.agent(1).steps_executed(), 3);
}

TEST(AdsSystem, RoundRobinDeltaFromSecondStep) {
  AdsFixture f;
  AdsSystem ads = f.make(AgentMode::kRoundRobin);
  const auto first = ads.step(f.rig.capture(f.world, 0), 0.05);
  EXPECT_FALSE(first.have_delta);
  const auto second = ads.step(f.rig.capture(f.world, 1), 0.05);
  EXPECT_TRUE(second.have_delta);
}

TEST(AdsSystem, SingleModeUsesOneAgent) {
  AdsFixture f;
  AdsSystem ads = f.make(AgentMode::kSingle);
  EXPECT_EQ(ads.num_agents(), 1);
  ads.step(f.rig.capture(f.world, 0), 0.05);
  const auto sr = ads.step(f.rig.capture(f.world, 1), 0.05);
  EXPECT_EQ(sr.acting_agent, 0);
  EXPECT_TRUE(sr.have_delta);  // temporal self-comparison
  EXPECT_EQ(ads.agent(0).steps_executed(), 2);
}

TEST(AdsSystem, DuplicateRunsBothAgentsEveryStep) {
  AdsFixture f;
  AdsSystem ads = f.make(AgentMode::kDuplicate);
  const auto sr = ads.step(f.rig.capture(f.world, 0), 0.05);
  EXPECT_TRUE(sr.have_delta);  // same-step comparison available immediately
  EXPECT_EQ(ads.agent(0).steps_executed(), 1);
  EXPECT_EQ(ads.agent(1).steps_executed(), 1);
  // Each agent ran on its own engine set.
  EXPECT_GT(f.gpu0.total_dyn_instructions(), 0u);
  EXPECT_GT(f.gpu1.total_dyn_instructions(), 0u);
}

TEST(AdsSystem, RoundRobinSharesOneEngineSet) {
  AdsFixture f;
  AdsSystem ads = f.make(AgentMode::kRoundRobin);
  ads.step(f.rig.capture(f.world, 0), 0.05);
  ads.step(f.rig.capture(f.world, 1), 0.05);
  EXPECT_GT(f.gpu0.total_dyn_instructions(), 0u);
  EXPECT_EQ(f.gpu1.total_dyn_instructions(), 0u);  // unused second set
}

TEST(AdsSystem, DuplicateModeFaultFreeSameStepDeltaSmall) {
  AdsFixture f;
  AdsSystem ads = f.make(AgentMode::kDuplicate);
  // Identical engines + identical inputs -> identical outputs (bit-equal
  // here because both replicas are deterministic; the paper's FD runs differ
  // only through hardware-level nondeterminism).
  for (int step = 0; step < 4; ++step) {
    const auto sr = ads.step(f.rig.capture(f.world, step), 0.05);
    EXPECT_NEAR(sr.delta.throttle, 0.0, 1e-12);
    EXPECT_NEAR(sr.delta.steer, 0.0, 1e-12);
    f.world.step(sr.applied, 0.05);
  }
}

TEST(AdsSystem, TransientFaultAffectsOnlyOneRoundRobinAgent) {
  AdsFixture f;
  // A transient site somewhere in the second frame's processing (odd step ->
  // agent 1). Profile one step to find the per-step instruction count.
  AdsSystem probe = f.make(AgentMode::kRoundRobin);
  probe.step(f.rig.capture(f.world, 0), 0.05);
  const std::uint64_t per_step = f.gpu0.total_dyn_instructions();

  AdsFixture g;
  FaultPlan plan;
  plan.kind = FaultModelKind::kTransient;
  plan.domain = FaultDomain::kGpu;
  plan.target_dyn_index = per_step + per_step / 2;  // inside step 1
  plan.bit = 30;
  CrashHangModel silent;
  silent.p_crash_data = silent.p_hang_data = silent.p_crash_mem = 0.0;
  silent.p_hang_mem = silent.p_crash_ctrl = silent.p_hang_ctrl = 0.0;
  g.gpu0.configure(plan, 1, silent);
  AdsSystem ads = g.make(AgentMode::kRoundRobin);
  ads.step(g.rig.capture(g.world, 0), 0.05);
  EXPECT_FALSE(g.gpu0.fault_activated());  // agent 0's step: before the site
  ads.step(g.rig.capture(g.world, 1), 0.05);
  EXPECT_TRUE(g.gpu0.fault_activated());   // agent 1 executed the site
}

TEST(AdsSystem, StateBytesScaleWithAgents) {
  AdsFixture f;
  AdsSystem single = f.make(AgentMode::kSingle);
  AdsFixture g;
  AdsSystem dual = g.make(AgentMode::kRoundRobin);
  const SensorFrame frame = f.rig.capture(f.world, 0);
  single.step(frame, 0.05);
  dual.step(frame, 0.05);
  dual.step(frame, 0.05);
  EXPECT_GT(dual.state_bytes(), single.state_bytes() * 3 / 2);
}

TEST(AdsSystem, ResetRestartsSchedule) {
  AdsFixture f;
  AdsSystem ads = f.make(AgentMode::kRoundRobin);
  ads.step(f.rig.capture(f.world, 0), 0.05);
  ads.step(f.rig.capture(f.world, 1), 0.05);
  ads.reset();
  const auto sr = ads.step(f.rig.capture(f.world, 0), 0.05);
  EXPECT_EQ(sr.acting_agent, 0);
  EXPECT_FALSE(sr.have_delta);
}

}  // namespace
}  // namespace dav
