#include <gtest/gtest.h>

#include "agent/agent.h"
#include "sim/scenario.h"

namespace dav {
namespace {

struct AgentFixture {
  World world;
  SensorRig rig;
  GpuEngine gpu;
  CpuEngine cpu;
  SensorimotorAgent agent;

  AgentFixture()
      : world(make_scenario(ScenarioId::kLeadSlowdown)),
        rig(front_camera_rig(), 7),
        agent("test", make_config(world), gpu, cpu, &world.map()) {
    gpu.configure({}, 0);
    cpu.configure({}, 0);
  }

  static AgentConfig make_config(const World& world) {
    AgentConfig cfg;
    cfg.perception.center_cam = front_camera_rig()[1];
    cfg.mission_speed = world.scenario().target_speed;
    cfg.route_start_s = world.scenario().ego_start_s;
    return cfg;
  }
};

TEST(Agent, ProducesBoundedActuation) {
  AgentFixture f;
  const SensorFrame frame = f.rig.capture(f.world, 0);
  const Actuation cmd = f.agent.act(frame, 0.05);
  EXPECT_GE(cmd.throttle, 0.0);
  EXPECT_LE(cmd.throttle, 1.0);
  EXPECT_GE(cmd.brake, 0.0);
  EXPECT_LE(cmd.brake, 1.0);
  EXPECT_GE(cmd.steer, -1.0);
  EXPECT_LE(cmd.steer, 1.0);
  EXPECT_EQ(f.agent.steps_executed(), 1);
}

TEST(Agent, PerceivesLeadVehicle) {
  AgentFixture f;
  f.agent.act(f.rig.capture(f.world, 0), 0.05);
  f.agent.act(f.rig.capture(f.world, 1), 0.05);
  const PerceptionOutput& p = f.agent.last_perception();
  EXPECT_TRUE(p.obstacle_valid);
  EXPECT_NEAR(p.obstacle_distance, 25.0 - 2.25, 8.0);
}

TEST(Agent, WaypointsPointForward) {
  AgentFixture f;
  f.agent.act(f.rig.capture(f.world, 0), 0.05);
  for (const Vec2& wp : f.agent.last_waypoints().pts) {
    EXPECT_GT(wp.x, 0.0);
  }
}

TEST(Agent, ExecutesBothEngines) {
  AgentFixture f;
  f.agent.act(f.rig.capture(f.world, 0), 0.05);
  // The GPU does the heavy lifting; the CPU runs the glue (paper §V-C).
  EXPECT_GT(f.gpu.total_dyn_instructions(), 10000u);
  EXPECT_GT(f.cpu.total_dyn_instructions(), 100u);
  EXPECT_GT(f.gpu.total_dyn_instructions(),
            f.cpu.total_dyn_instructions() * 20);
}

TEST(Agent, ResetRestoresInitialBehavior) {
  AgentFixture f;
  const SensorFrame frame = f.rig.capture(f.world, 0);
  const Actuation first = f.agent.act(frame, 0.05);
  for (int i = 0; i < 5; ++i) f.agent.act(frame, 0.05);
  f.agent.reset();
  EXPECT_EQ(f.agent.steps_executed(), 0);
  const Actuation after = f.agent.act(frame, 0.05);
  EXPECT_NEAR(after.throttle, first.throttle, 1e-9);
  EXPECT_NEAR(after.steer, first.steer, 1e-9);
}

TEST(Agent, StateBytesAccountsPerception) {
  AgentFixture f;
  f.agent.act(f.rig.capture(f.world, 0), 0.05);
  EXPECT_GT(f.agent.state_bytes(), sizeof(SensorimotorAgent));
}

TEST(Agent, DeterministicForSameInputs) {
  AgentFixture a;
  AgentFixture b;
  const SensorFrame frame = a.rig.capture(a.world, 0);
  const Actuation ca = a.agent.act(frame, 0.05);
  const Actuation cb = b.agent.act(frame, 0.05);
  EXPECT_DOUBLE_EQ(ca.throttle, cb.throttle);
  EXPECT_DOUBLE_EQ(ca.brake, cb.brake);
  EXPECT_DOUBLE_EQ(ca.steer, cb.steer);
}

}  // namespace
}  // namespace dav
