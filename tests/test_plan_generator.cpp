#include <gtest/gtest.h>

#include <set>

#include "fi/plan_generator.h"

namespace dav {
namespace {

TEST(PlanGenerator, TransientCountAndDomain) {
  InjectionPlanGenerator gen(1);
  ExecutionProfile prof;
  prof.domain = FaultDomain::kGpu;
  prof.total_dyn_instructions = 100000;
  const auto plans = gen.transient_plans(prof, 50);
  EXPECT_EQ(plans.size(), 50u);
  for (const auto& p : plans) {
    EXPECT_EQ(p.kind, FaultModelKind::kTransient);
    EXPECT_EQ(p.domain, FaultDomain::kGpu);
    EXPECT_LT(p.target_dyn_index, 100000u);
    EXPECT_GE(p.bit, 0);
    EXPECT_LT(p.bit, 32);
  }
}

TEST(PlanGenerator, OversamplingPlacesSitesPastEnd) {
  InjectionPlanGenerator gen(2);
  ExecutionProfile prof;
  prof.domain = FaultDomain::kCpu;
  prof.total_dyn_instructions = 1000;
  const auto plans = gen.transient_plans(prof, 400, /*over=*/1.5);
  int past_end = 0;
  for (const auto& p : plans) {
    EXPECT_LT(p.target_dyn_index, 1500u);
    past_end += p.target_dyn_index >= 1000;
  }
  // Roughly a third should land past the profiled end.
  EXPECT_GT(past_end, 80);
  EXPECT_LT(past_end, 200);
}

TEST(PlanGenerator, TransientSitesSpreadUniformly) {
  InjectionPlanGenerator gen(3);
  ExecutionProfile prof;
  prof.domain = FaultDomain::kGpu;
  prof.total_dyn_instructions = 1000;
  const auto plans = gen.transient_plans(prof, 1000);
  int low_half = 0;
  for (const auto& p : plans) low_half += p.target_dyn_index < 500;
  EXPECT_NEAR(low_half, 500, 60);
}

TEST(PlanGenerator, PermanentSweepsFullIsaWithRepeats) {
  InjectionPlanGenerator gen(4);
  const auto gpu = gen.permanent_plans(FaultDomain::kGpu, 3);
  EXPECT_EQ(gpu.size(), static_cast<std::size_t>(kNumGpuOpcodes) * 3);
  std::set<int> opcodes;
  for (const auto& p : gpu) {
    EXPECT_EQ(p.kind, FaultModelKind::kPermanent);
    opcodes.insert(p.target_opcode);
  }
  EXPECT_EQ(opcodes.size(), static_cast<std::size_t>(kNumGpuOpcodes));

  const auto cpu = gen.permanent_plans(FaultDomain::kCpu, 3);
  EXPECT_EQ(cpu.size(), static_cast<std::size_t>(kNumCpuOpcodes) * 3);
}

TEST(PlanGenerator, RepeatsGetIndependentBits) {
  InjectionPlanGenerator gen(5);
  const auto plans = gen.permanent_plans(FaultDomain::kGpu, 3);
  bool any_differ = false;
  for (int op = 0; op < kNumGpuOpcodes; ++op) {
    const auto base = static_cast<std::size_t>(op) * 3;
    if (plans[base].bit != plans[base + 1].bit ||
        plans[base + 1].bit != plans[base + 2].bit) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(PlanGenerator, DeterministicForSeed) {
  InjectionPlanGenerator a(9);
  InjectionPlanGenerator b(9);
  ExecutionProfile prof;
  prof.total_dyn_instructions = 5000;
  const auto pa = a.transient_plans(prof, 10);
  const auto pb = b.transient_plans(prof, 10);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].target_dyn_index, pb[i].target_dyn_index);
    EXPECT_EQ(pa[i].bit, pb[i].bit);
  }
}

TEST(PlanGenerator, NumOpcodesHelper) {
  EXPECT_EQ(InjectionPlanGenerator::num_opcodes(FaultDomain::kGpu),
            kNumGpuOpcodes);
  EXPECT_EQ(InjectionPlanGenerator::num_opcodes(FaultDomain::kCpu),
            kNumCpuOpcodes);
}

TEST(FaultPlan, MaskFromBit) {
  FaultPlan p;
  p.bit = 5;
  EXPECT_EQ(p.mask(), 32u);
  EXPECT_FALSE(p.active());
  p.kind = FaultModelKind::kTransient;
  EXPECT_TRUE(p.active());
}

}  // namespace
}  // namespace dav
