#include <gtest/gtest.h>

#include "sensors/diversity.h"
#include "sensors/kitti_synth.h"

namespace dav {
namespace {

TEST(KittiSynth, SequenceShapes) {
  KittiLikeConfig cfg;
  cfg.num_frames = 12;
  const KittiLikeSequence seq = generate_kitti_like(cfg);
  EXPECT_EQ(seq.frames.size(), 12u);
  EXPECT_EQ(seq.imu_gps.size(), 12u);
  EXPECT_EQ(seq.lidar.size(), 12u);
  EXPECT_FALSE(seq.tracks.empty());
  for (const auto& track : seq.tracks) {
    EXPECT_EQ(track.bboxes.size(), 12u);
    EXPECT_EQ(track.ego_centers.size(), 12u);
  }
  EXPECT_EQ(seq.frames[0].width(), cfg.width);
  EXPECT_EQ(seq.frames[0].height(), cfg.height);
  EXPECT_EQ(seq.imu_gps[0].size(), 6u);
}

TEST(KittiSynth, ConsecutiveFramesDifferButModestly) {
  KittiLikeConfig cfg;
  cfg.num_frames = 6;
  const KittiLikeSequence seq = generate_kitti_like(cfg);
  const CountHistogram h =
      image_bit_diversity(seq.frames[2], seq.frames[3]);
  // Real-world-like: nonzero median diversity but far from 24 bits.
  EXPECT_GE(h.percentile(50), 3u);
  EXPECT_LE(h.percentile(50), 16u);
}

TEST(KittiSynth, DeterministicForSeed) {
  KittiLikeConfig cfg;
  cfg.num_frames = 4;
  const KittiLikeSequence a = generate_kitti_like(cfg);
  const KittiLikeSequence b = generate_kitti_like(cfg);
  EXPECT_EQ(a.frames[3].bytes(), b.frames[3].bytes());
  EXPECT_EQ(a.lidar[2], b.lidar[2]);
}

TEST(KittiSynth, SeedChangesData) {
  KittiLikeConfig a_cfg;
  a_cfg.num_frames = 4;
  KittiLikeConfig b_cfg = a_cfg;
  b_cfg.seed = 1234;
  EXPECT_NE(generate_kitti_like(a_cfg).frames[3].bytes(),
            generate_kitti_like(b_cfg).frames[3].bytes());
}

TEST(KittiSynth, EgoMovesForward) {
  KittiLikeConfig cfg;
  cfg.num_frames = 20;
  const KittiLikeSequence seq = generate_kitti_like(cfg);
  // Parked objects recede in the ego frame (their local x decreases).
  bool any_approaching = false;
  for (const auto& track : seq.tracks) {
    if (track.ego_centers.front().x > track.ego_centers.back().x + 3.0) {
      any_approaching = true;
    }
  }
  EXPECT_TRUE(any_approaching);
}

}  // namespace
}  // namespace dav
