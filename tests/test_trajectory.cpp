#include <gtest/gtest.h>

#include "sim/trajectory.h"

namespace dav {
namespace {

Trajectory make_traj(std::initializer_list<Vec2> pts) {
  Trajectory t;
  for (const Vec2& p : pts) t.push(p);
  return t;
}

TEST(MaxDivergence, PointwiseMaximum) {
  const Trajectory a = make_traj({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = make_traj({{0, 0}, {1, 1}, {2, 3}});
  EXPECT_DOUBLE_EQ(max_divergence(a, b), 3.0);
}

TEST(MaxDivergence, CommonPrefixOnly) {
  const Trajectory a = make_traj({{0, 0}, {1, 0}});
  const Trajectory b = make_traj({{0, 0}, {1, 2}, {99, 99}});
  EXPECT_DOUBLE_EQ(max_divergence(a, b), 2.0);
}

TEST(MaxDivergence, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(max_divergence({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(max_divergence(make_traj({{1, 1}}), {}), 0.0);
}

TEST(MeanTrajectory, PointwiseMean) {
  const Trajectory a = make_traj({{0, 0}, {2, 0}});
  const Trajectory b = make_traj({{0, 2}, {4, 2}});
  const Trajectory m = mean_trajectory({a, b});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(0), Vec2(0, 1));
  EXPECT_EQ(m.at(1), Vec2(3, 1));
}

TEST(MeanTrajectory, TruncatesToShortest) {
  const Trajectory a = make_traj({{0, 0}, {1, 0}, {2, 0}});
  const Trajectory b = make_traj({{0, 0}, {1, 0}});
  EXPECT_EQ(mean_trajectory({a, b}).size(), 2u);
}

TEST(MeanTrajectory, EmptyInput) {
  EXPECT_TRUE(mean_trajectory({}).empty());
}

TEST(MeanTrajectory, SingleRunIsIdentity) {
  const Trajectory a = make_traj({{1, 2}, {3, 4}});
  const Trajectory m = mean_trajectory({a});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(1), Vec2(3, 4));
}

}  // namespace
}  // namespace dav
