// Socket transport + distributed campaign service: framing over byte
// streams, endpoint parsing, deterministic backoff, the worker-daemon
// handshake, and the fault-tolerant coordinator (work-stealing, straggler
// re-dispatch, duplicate discard, dead-worker requeue, journal merge).
// The daemon/coordinator machinery is POSIX-only, like the executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/executor.h"
#include "campaign/journal.h"
#include "campaign/serialize.h"
#include "campaign/transport.h"
#include "util/trace.h"

#if defined(__unix__) || defined(__APPLE__)
#define DAV_TEST_POSIX 1
#include <chrono>
#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#endif

namespace dav {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

RunResult stub_result(const RunConfig& cfg) {
  RunResult r;
  r.scenario = cfg.scenario;
  r.mode = cfg.mode;
  r.fault = cfg.fault;
  r.run_seed = cfg.run_seed;
  r.outcome = FaultOutcome::kMasked;
  r.fault_activated = true;
  r.duration = static_cast<double>(cfg.run_seed % 97) * 0.5;
  r.steps = static_cast<int>(cfg.run_seed % 13);
  r.trajectory.push({static_cast<double>(cfg.run_seed % 7), -1.5});
  r.cvip_trace = {42.0, static_cast<double>(cfg.run_seed % 5)};
  r.cpu_instructions = cfg.run_seed * 3;
  return r;
}

std::vector<RunConfig> make_configs(std::size_t n) {
  std::vector<RunConfig> cfgs(n);
  for (std::size_t i = 0; i < n; ++i) {
    cfgs[i].run_seed = 1000 + i;
    cfgs[i].fault.kind = FaultModelKind::kTransient;
    cfgs[i].fault.target_dyn_index = 7000 + i;
  }
  return cfgs;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- framing over a byte stream -------------------------------------------

TEST(TransportFraming, FrameSurvivesEveryByteBoundarySplit) {
  const std::string payload = msg_run_request(7, "config-bytes-go-here");
  const std::string frame = frame_message(payload);
  // Deliver the frame 1 byte at a time: kNeedMore at every prefix, then one
  // clean kOk at the final byte — no spurious corrupt verdicts mid-frame.
  std::string buf;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    buf.push_back(frame[i]);
    const FrameSplit fs = try_unframe(buf);
    EXPECT_EQ(fs.status, FrameSplit::Status::kNeedMore) << "byte " << i;
  }
  buf.push_back(frame.back());
  const FrameSplit fs = try_unframe(buf);
  ASSERT_EQ(fs.status, FrameSplit::Status::kOk);
  EXPECT_EQ(fs.payload, payload);
  EXPECT_EQ(fs.consumed, frame.size());
}

TEST(TransportFraming, TwoFramesInOneChunkSplitCleanly) {
  const std::string p1 = msg_heartbeat();
  const std::string p2 = msg_run_result(3, "payload");
  std::string buf = frame_message(p1) + frame_message(p2);
  FrameSplit fs = try_unframe(buf);
  ASSERT_EQ(fs.status, FrameSplit::Status::kOk);
  EXPECT_EQ(fs.payload, p1);
  buf.erase(0, fs.consumed);
  fs = try_unframe(buf);
  ASSERT_EQ(fs.status, FrameSplit::Status::kOk);
  EXPECT_EQ(fs.payload, p2);
  EXPECT_EQ(fs.consumed, buf.size());
}

TEST(TransportFraming, CorruptedByteIsDetected) {
  std::string frame = frame_message(msg_hello(0x1234, 0));
  frame[frame.size() - 3] ^= 0x40;  // flip a payload bit
  const FrameSplit fs = try_unframe(frame);
  EXPECT_EQ(fs.status, FrameSplit::Status::kCorrupt);
}

// ---- message codec --------------------------------------------------------

TEST(TransportCodec, MessagesRoundTrip) {
  TransportMsg m = parse_transport_msg(msg_hello(0xDEADBEEFull, 42));
  EXPECT_EQ(m.type, TransportMsgType::kHello);
  EXPECT_EQ(m.proto_version, kTransportProtocolVersion);
  EXPECT_EQ(m.fingerprint, 0xDEADBEEFull);
  EXPECT_EQ(m.clock_ns, 42u);

  m = parse_transport_msg(msg_hello_ack(4, 43));
  EXPECT_EQ(m.type, TransportMsgType::kHelloAck);
  EXPECT_EQ(m.slots, 4u);
  EXPECT_EQ(m.clock_ns, 43u);

  m = parse_transport_msg(msg_hello_reject("wrong campaign"));
  EXPECT_EQ(m.type, TransportMsgType::kHelloReject);
  EXPECT_EQ(m.reason, "wrong campaign");

  m = parse_transport_msg(msg_run_request(41, "cfg"));
  EXPECT_EQ(m.type, TransportMsgType::kRunRequest);
  EXPECT_EQ(m.index, 41u);
  EXPECT_EQ(m.body, "cfg");

  m = parse_transport_msg(msg_run_result(9, std::string("res\0ult", 7)));
  EXPECT_EQ(m.type, TransportMsgType::kRunResult);
  EXPECT_EQ(m.index, 9u);
  EXPECT_EQ(m.body, std::string("res\0ult", 7));

  m = parse_transport_msg(msg_heartbeat());
  EXPECT_EQ(m.type, TransportMsgType::kHeartbeat);
}

TEST(TransportCodec, GarbageAndTruncationThrow) {
  EXPECT_THROW(parse_transport_msg(""), std::runtime_error);
  EXPECT_THROW(parse_transport_msg("\x7f"), std::runtime_error);
  // A truncated kHello (type byte only).
  EXPECT_THROW(parse_transport_msg(std::string(1, '\x01')),
               std::runtime_error);
  // Trailing garbage after a fixed-size message.
  EXPECT_THROW(parse_transport_msg(msg_heartbeat() + "x"),
               std::runtime_error);
}

TEST(TransportCodec, ResultPayloadRoundTripsThroughRunResultMsg) {
  // The result payload embedded in kRunResult must come back byte-identical:
  // the journal merge relies on it.
  RunConfig cfg;
  cfg.run_seed = 77;
  const std::string payload = make_result_payload(true, {}, stub_result(cfg));
  const TransportMsg m = parse_transport_msg(msg_run_result(5, payload));
  EXPECT_EQ(m.body, payload);
  const ResultPayload p = parse_result_payload(m.body);
  EXPECT_TRUE(p.ok);
  EXPECT_EQ(serialize_run_result(p.result),
            serialize_run_result(stub_result(cfg)));
}

// ---- endpoints ------------------------------------------------------------

TEST(TransportEndpoint, ParsesTcpAndUnixSpecs) {
  Endpoint ep = parse_endpoint("localhost:9000");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.host, "localhost");
  EXPECT_EQ(ep.port, 9000);

  ep = parse_endpoint("unix:/tmp/dav.sock");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/dav.sock");

  EXPECT_THROW(parse_endpoint(""), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("nohost"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint(":123"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:0"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:70000"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("host:12x"), std::invalid_argument);
  EXPECT_THROW(parse_endpoint("unix:"), std::invalid_argument);
}

TEST(TransportEndpoint, SplitWorkerListTrimsAndRejectsEmpties) {
  const std::vector<std::string> specs =
      split_worker_list(" a:1 , unix:/x ,b:2");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0], "a:1");
  EXPECT_EQ(specs[1], "unix:/x");
  EXPECT_EQ(specs[2], "b:2");
  EXPECT_THROW(split_worker_list(""), std::invalid_argument);
  EXPECT_THROW(split_worker_list("a:1,,b:2"), std::invalid_argument);
  EXPECT_THROW(split_worker_list("a:1,"), std::invalid_argument);
}

// ---- backoff --------------------------------------------------------------

TEST(TransportBackoff, DeterministicJitteredAndBounded) {
  const double base = 0.25;
  // Pure: same inputs, same delay.
  EXPECT_EQ(backoff_delay_sec(base, 3, 42), backoff_delay_sec(base, 3, 42));
  // Jitter stays in [0.75, 1.25) of the capped exponential.
  for (int attempt = 0; attempt < 20; ++attempt) {
    for (std::uint64_t salt : {0ull, 7ull, 0xFFFFFFFFFFFFull}) {
      const double d = backoff_delay_sec(base, attempt, salt, 60.0);
      const double nominal =
          std::min(base * static_cast<double>(1 << std::min(attempt, 16)),
                   60.0);
      EXPECT_GE(d, 0.75 * nominal);
      EXPECT_LT(d, 1.25 * nominal);
    }
  }
  // Different salts de-synchronize (thundering-herd defense): at least one
  // pair of salts must disagree for the same attempt.
  EXPECT_NE(backoff_delay_sec(base, 4, 1), backoff_delay_sec(base, 4, 2));
  // Growth: a later attempt waits longer than the first despite jitter.
  EXPECT_GT(backoff_delay_sec(base, 3, 9), backoff_delay_sec(base, 0, 9));
}

TEST(TransportBackoff, HugeAttemptCountsDoNotOverflow) {
  // Regression: the executor used to compute `1 << attempt`, which is
  // undefined behavior past 30 retries. The clamped version must stay
  // finite and capped for any attempt count.
  for (int attempt : {31, 32, 40, 62, 1000, 1 << 30}) {
    const double d = backoff_delay_sec(0.25, attempt, 123, 60.0);
    EXPECT_TRUE(std::isfinite(d)) << "attempt " << attempt;
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 1.25 * 60.0);
  }
  // Negative attempts clamp to the base delay instead of shifting by a
  // negative count (also UB).
  const double d = backoff_delay_sec(0.25, -5, 123, 60.0);
  EXPECT_GE(d, 0.75 * 0.25);
  EXPECT_LT(d, 1.25 * 0.25);
}

// ---- telemetry codec -------------------------------------------------------

/// A deterministic trace residue keyed on the run seed — stands in for what
/// the driver stashes after a real traced run.
obs::RunCapture synthetic_capture(std::uint64_t seed) {
  obs::RunCapture cap;
  cap.valid = true;
  cap.dropped = seed % 5;
  cap.dt = 0.025;
  cap.histograms.at(obs::Stage::kControl).add(std::uint64_t{1} << (10 + seed % 3));
  cap.histograms.at(obs::Stage::kPlanner).add(4096);
  obs::TraceEvent ev;
  ev.tick = static_cast<std::uint32_t>(40 + seed % 7);
  ev.id = static_cast<std::uint16_t>(obs::Instant::kDetectorAlarm);
  ev.kind = obs::EventKind::kInstant;
  ev.track = static_cast<std::int8_t>(seed % 3);
  ev.value = 0.5 * static_cast<double>(seed % 11);
  cap.instants.push_back(ev);
  return cap;
}

TEST(TelemetryCodec, RunCaptureRoundTripsIncludingTickLength) {
  RunTraceCapture cap;
  cap.plan_index = 17;
  cap.capture = synthetic_capture(9);
  const std::string blob = encode_run_capture(cap);
  const RunTraceCapture back = decode_run_capture(blob);
  EXPECT_EQ(back.plan_index, 17u);
  EXPECT_TRUE(back.capture.valid);
  EXPECT_EQ(back.capture.dropped, cap.capture.dropped);
  EXPECT_DOUBLE_EQ(back.capture.dt, 0.025);
  EXPECT_EQ(back.capture.histograms.total_count(), 2u);
  EXPECT_EQ(
      back.capture.histograms.at(obs::Stage::kPlanner).percentile_ns(50.0),
      4096u);
  ASSERT_EQ(back.capture.instants.size(), 1u);
  EXPECT_EQ(back.capture.instants[0].tick, cap.capture.instants[0].tick);
  EXPECT_EQ(back.capture.instants[0].id, cap.capture.instants[0].id);
  EXPECT_EQ(back.capture.instants[0].track, cap.capture.instants[0].track);
  EXPECT_DOUBLE_EQ(back.capture.instants[0].value,
                   cap.capture.instants[0].value);

  // The kTelemetry wrapper forwards the blob verbatim under its sub-type.
  const TransportMsg msg = parse_transport_msg(msg_telemetry_capture(blob));
  ASSERT_EQ(msg.type, TransportMsgType::kTelemetry);
  EXPECT_EQ(telemetry_subtype(msg.body), kTelemetryRunCapture);
  EXPECT_EQ(decode_telemetry_capture(msg.body).plan_index, 17u);

  EXPECT_THROW(decode_run_capture(blob.substr(0, blob.size() - 1)),
               std::runtime_error);
  EXPECT_THROW(decode_run_capture(blob + "x"), std::runtime_error);
}

TEST(TelemetryCodec, AggregateRoundTrips) {
  TelemetryAggregate agg;
  agg.base_ns = 123456789;
  agg.launched = 10;
  agg.respawns = 1;
  agg.timeouts = 2;
  agg.signal_deaths = 3;
  agg.checkpoint_hits = 4;
  agg.checkpoint_misses = 5;
  agg.checkpoint_evictions = 9;
  agg.trace_dropped = 6;
  agg.histograms.at(obs::Stage::kTick).add(2048);
  WorkerSpan w;
  w.index = 7;
  w.slot = 1;
  w.attempt = 2;
  w.start_sec = 0.5;
  w.dur_sec = 0.25;
  agg.spans.push_back(w);

  const TransportMsg msg = parse_transport_msg(msg_telemetry_aggregate(agg));
  ASSERT_EQ(msg.type, TransportMsgType::kTelemetry);
  EXPECT_EQ(telemetry_subtype(msg.body), kTelemetryAggregate);
  const TelemetryAggregate back = decode_telemetry_aggregate(msg.body);
  EXPECT_EQ(back.base_ns, 123456789u);
  EXPECT_EQ(back.launched, 10u);
  EXPECT_EQ(back.respawns, 1u);
  EXPECT_EQ(back.timeouts, 2u);
  EXPECT_EQ(back.signal_deaths, 3u);
  EXPECT_EQ(back.checkpoint_hits, 4u);
  EXPECT_EQ(back.checkpoint_misses, 5u);
  EXPECT_EQ(back.checkpoint_evictions, 9u);
  EXPECT_EQ(back.trace_dropped, 6u);
  EXPECT_EQ(back.histograms.at(obs::Stage::kTick).percentile_ns(50.0), 2048u);
  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].index, 7u);
  EXPECT_EQ(back.spans[0].slot, 1);
  EXPECT_EQ(back.spans[0].attempt, 2);
  EXPECT_DOUBLE_EQ(back.spans[0].start_sec, 0.5);
  EXPECT_DOUBLE_EQ(back.spans[0].dur_sec, 0.25);
}

#if DAV_TEST_POSIX

// ---- live daemon/coordinator helpers --------------------------------------

/// Fork a worker daemon serving `listen` with the given work function.
/// Killed (or SIGTERMed) and reaped by the caller.
pid_t spawn_daemon(const std::string& listen,
                   CampaignExecutor::CheckpointRunFn fn,
                   int jobs = 2, std::uint64_t expected_fingerprint = 0,
                   double heartbeat_sec = 0.2) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  ServeOptions sopts;
  sopts.listen_spec = listen;
  sopts.heartbeat_sec = heartbeat_sec;
  sopts.expected_fingerprint = expected_fingerprint;
  ExecutorOptions eopts;
  eopts.jobs = jobs;
  eopts.run_timeout_sec = 30.0;
  try {
    serve_campaign(sopts, eopts, std::move(fn));
  } catch (...) {
  }
  ::_exit(0);
}

void stop_daemon(pid_t pid, int sig = SIGTERM) {
  ::kill(pid, sig);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

/// Wait for a unix-socket daemon to come up (bind is near-instant; this only
/// guards against scheduler hiccups on loaded CI hosts).
void await_socket(const std::string& path) {
  for (int i = 0; i < 200; ++i) {
    if (::access(path.c_str(), F_OK) == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

CampaignExecutor::CheckpointRunFn stub_fn() {
  return [](const RunConfig& c, CheckpointStore*) { return stub_result(c); };
}

CampaignExecutor::CheckpointRunFn sleepy_stub_fn(int millis) {
  return [millis](const RunConfig& c, CheckpointStore*) {
    std::this_thread::sleep_for(std::chrono::milliseconds(millis));
    return stub_result(c);
  };
}

void expect_matches_stub(const std::vector<RunConfig>& cfgs,
                         const std::vector<RunResult>& results) {
  ASSERT_EQ(results.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(results[i]),
              serialize_run_result(stub_result(cfgs[i])))
        << "index " << i;
  }
}

// ---- distributed coordinator ----------------------------------------------

TEST(Distributed, TwoDaemonCampaignMatchesSerialByteForByte) {
  const std::string s1 = temp_path("dist_a.sock");
  const std::string s2 = temp_path("dist_b.sock");
  const pid_t d1 = spawn_daemon("unix:" + s1, stub_fn());
  const pid_t d2 = spawn_daemon("unix:" + s2, stub_fn());
  await_socket(s1);
  await_socket(s2);

  ExecutorOptions o;
  o.workers = {"unix:" + s1, "unix:" + s2};
  o.max_retries = 1;
  o.heartbeat_sec = 0.2;
  CampaignExecutor exec(o, stub_fn());
  const auto cfgs = make_configs(12);
  const auto results = exec.run_all(cfgs);
  stop_daemon(d1);
  stop_daemon(d2);

  expect_matches_stub(cfgs, results);
  EXPECT_TRUE(exec.quarantined().empty());
  EXPECT_EQ(exec.stats().remote_endpoints, 2);
  // Every run executed remotely, none locally.
  EXPECT_EQ(exec.stats().launched, 0);
}

TEST(Distributed, MergedJournalIsByteIdenticalToSerialJournal) {
  const auto cfgs = make_configs(8);
  const std::uint64_t fp = 0xFEEDFACEull;

  // Serial in-process reference journal.
  const std::string serial_journal = temp_path("jserial.bin");
  {
    ExecutorOptions o;
    o.force_in_process = true;
    o.journal_path = serial_journal;
    o.campaign_fingerprint = fp;
    CampaignExecutor exec(o, stub_fn());
    exec.run_all(cfgs);
  }

  const std::string dist_journal = temp_path("jdist.bin");
  const std::string s1 = temp_path("jdist_a.sock");
  const std::string s2 = temp_path("jdist_b.sock");
  const pid_t d1 = spawn_daemon("unix:" + s1, stub_fn());
  const pid_t d2 = spawn_daemon("unix:" + s2, stub_fn());
  await_socket(s1);
  await_socket(s2);
  {
    ExecutorOptions o;
    o.workers = {"unix:" + s1, "unix:" + s2};
    o.journal_path = dist_journal;
    o.campaign_fingerprint = fp;
    o.heartbeat_sec = 0.2;
    CampaignExecutor exec(o, stub_fn());
    const auto results = exec.run_all(cfgs);
    expect_matches_stub(cfgs, results);
    EXPECT_GT(exec.stats().journal_appends, 0);
  }
  stop_daemon(d1);
  stop_daemon(d2);

  const std::string serial_bytes = slurp(serial_journal);
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, slurp(dist_journal));
  // The per-endpoint shards are merged and removed afterwards.
  EXPECT_NE(::access((dist_journal + ".shard0").c_str(), F_OK), 0);
  EXPECT_NE(::access((dist_journal + ".shard1").c_str(), F_OK), 0);
  EXPECT_NE(::access((dist_journal + ".shardc").c_str(), F_OK), 0);
}

TEST(Distributed, ResumeWorksAcrossSerialAndDistributedStrategies) {
  const auto cfgs = make_configs(6);
  const std::uint64_t fp = 0xABCDull;

  // Serial journaled run, then a distributed executor resuming from the
  // same journal: every run replays, no socket is ever needed (the listed
  // endpoint does not exist).
  const std::string j1 = temp_path("resume_s2d.bin");
  {
    ExecutorOptions o;
    o.force_in_process = true;
    o.journal_path = j1;
    o.campaign_fingerprint = fp;
    CampaignExecutor exec(o, stub_fn());
    exec.run_all(cfgs);
  }
  {
    ExecutorOptions o;
    o.workers = {"unix:" + temp_path("never_created.sock")};
    o.journal_path = j1;
    o.campaign_fingerprint = fp;
    CampaignExecutor exec(o, stub_fn());
    const auto results = exec.run_all(cfgs);
    expect_matches_stub(cfgs, results);
    EXPECT_EQ(exec.stats().journal_hits, 6);
  }

  // Distributed journaled run, then a serial resume from its merged journal.
  const std::string j2 = temp_path("resume_d2s.bin");
  const std::string sock = temp_path("resume.sock");
  const pid_t d = spawn_daemon("unix:" + sock, stub_fn());
  await_socket(sock);
  {
    ExecutorOptions o;
    o.workers = {"unix:" + sock};
    o.journal_path = j2;
    o.campaign_fingerprint = fp;
    o.heartbeat_sec = 0.2;
    CampaignExecutor exec(o, stub_fn());
    exec.run_all(cfgs);
  }
  stop_daemon(d);
  {
    ExecutorOptions o;
    o.force_in_process = true;
    o.journal_path = j2;
    o.campaign_fingerprint = fp;
    CampaignExecutor exec(o, stub_fn());
    const auto results = exec.run_all(cfgs);
    expect_matches_stub(cfgs, results);
    EXPECT_EQ(exec.stats().journal_hits, 6);
  }
}

TEST(Distributed, FingerprintMismatchIsRejectedAtHandshake) {
  const std::string sock = temp_path("fpmismatch.sock");
  const pid_t d = spawn_daemon("unix:" + sock, stub_fn(), /*jobs=*/1,
                               /*expected_fingerprint=*/0x1111ull);
  await_socket(sock);

  ExecutorOptions o;
  o.workers = {"unix:" + sock};
  o.campaign_fingerprint = 0x2222ull;  // daemon serves a different campaign
  o.heartbeat_sec = 0.2;
  CampaignExecutor exec(o, stub_fn());
  const auto cfgs = make_configs(3);
  // The daemon's kHelloReject is permanent: with no usable endpoint left the
  // coordinator fails loudly instead of spinning.
  EXPECT_THROW(exec.run_all(cfgs), std::runtime_error);
  stop_daemon(d);
}

TEST(Distributed, CoordinatorWaitsForALateDaemon) {
  // The daemon comes up well after the coordinator started: the reconnect
  // backoff must keep retrying and complete the campaign.
  const std::string sock = temp_path("late.sock");
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    ServeOptions sopts;
    sopts.listen_spec = "unix:" + sock;
    sopts.heartbeat_sec = 0.2;
    ExecutorOptions eopts;
    eopts.jobs = 2;
    try {
      serve_campaign(sopts, eopts, stub_fn());
    } catch (...) {
    }
    ::_exit(0);
  }

  ExecutorOptions o;
  o.workers = {"unix:" + sock};
  o.heartbeat_sec = 0.2;
  CampaignExecutor exec(o, stub_fn());
  const auto cfgs = make_configs(4);
  const auto results = exec.run_all(cfgs);
  stop_daemon(pid);
  expect_matches_stub(cfgs, results);
  EXPECT_TRUE(exec.quarantined().empty());
}

TEST(Distributed, KilledWorkerDaemonIsSurvivedByTheOther) {
  const std::string s1 = temp_path("kill_a.sock");
  const std::string s2 = temp_path("kill_b.sock");
  // Slow enough that daemon A still holds runs in flight when it dies.
  const pid_t d1 = spawn_daemon("unix:" + s1, sleepy_stub_fn(60));
  const pid_t d2 = spawn_daemon("unix:" + s2, sleepy_stub_fn(10));
  await_socket(s1);
  await_socket(s2);

  // SIGKILL daemon A shortly into the campaign, from a helper process (the
  // coordinator blocks this thread).
  const pid_t killer = ::fork();
  if (killer == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ::kill(d1, SIGKILL);
    ::_exit(0);
  }

  ExecutorOptions o;
  o.workers = {"unix:" + s1, "unix:" + s2};
  o.max_retries = 3;
  o.retry_backoff_sec = 0.01;
  o.heartbeat_sec = 0.2;
  CampaignExecutor exec(o, stub_fn());
  const auto cfgs = make_configs(16);
  const auto results = exec.run_all(cfgs);
  int status = 0;
  ::waitpid(killer, &status, 0);
  ::waitpid(d1, &status, 0);
  stop_daemon(d2);

  // The campaign completes, bit-identical, with zero quarantines: runs that
  // died with daemon A were requeued onto daemon B.
  expect_matches_stub(cfgs, results);
  EXPECT_TRUE(exec.quarantined().empty());
}

TEST(Distributed, StragglersAreRedispatchedToAnotherEndpoint) {
  const std::string s1 = temp_path("strag_a.sock");
  const std::string s2 = temp_path("strag_b.sock");
  // Daemon A sits on every run; daemon B is fast. With a short straggler
  // deadline, runs stuck on A get a second copy dispatched to B, and the
  // first completed result wins.
  const pid_t d1 = spawn_daemon("unix:" + s1, sleepy_stub_fn(2000),
                                /*jobs=*/2);
  const pid_t d2 = spawn_daemon("unix:" + s2, stub_fn(), /*jobs=*/2);
  await_socket(s1);
  await_socket(s2);

  ExecutorOptions o;
  o.workers = {"unix:" + s1, "unix:" + s2};
  o.straggler_sec = 0.1;
  o.heartbeat_sec = 0.5;
  o.run_timeout_sec = 30.0;
  CampaignExecutor exec(o, stub_fn());
  const auto cfgs = make_configs(8);
  const auto results = exec.run_all(cfgs);
  stop_daemon(d1, SIGKILL);  // still sleeping in its pool workers
  stop_daemon(d2);

  expect_matches_stub(cfgs, results);
  EXPECT_TRUE(exec.quarantined().empty());
  EXPECT_GE(exec.stats().redispatches, 1);
}

// ---- scripted worker: duplicate results -----------------------------------

/// A protocol-level fake daemon: accepts one coordinator, acks the
/// handshake, and answers every run request with the correct result sent
/// TWICE. Exercises the coordinator's first-result-wins discard
/// deterministically (no timing races needed).
pid_t spawn_duplicating_worker(const std::string& listen) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const Endpoint ep = parse_endpoint(listen);
  std::string err;
  const int lfd = listen_endpoint(ep, &err);
  if (lfd < 0) ::_exit(1);
  const int cfd = ::accept(lfd, nullptr, nullptr);
  if (cfd < 0) ::_exit(1);
  std::string buf;
  bool acked = false;
  for (;;) {
    char chunk[65536];
    const ssize_t n = ::read(cfd, chunk, sizeof(chunk));
    if (n <= 0) ::_exit(0);
    buf.append(chunk, static_cast<std::size_t>(n));
    for (;;) {
      const FrameSplit fs = try_unframe(buf);
      if (fs.status == FrameSplit::Status::kNeedMore) break;
      if (fs.status == FrameSplit::Status::kCorrupt) ::_exit(1);
      buf.erase(0, fs.consumed);
      const TransportMsg msg = parse_transport_msg(fs.payload);
      if (msg.type == TransportMsgType::kHello && !acked) {
        acked = true;
        send_frame(cfd, msg_hello_ack(1, 0));
      } else if (msg.type == TransportMsgType::kRunRequest) {
        const RunConfigRecord rec = deserialize_run_config(msg.body);
        const std::string payload =
            make_result_payload(true, {}, stub_result(rec.cfg));
        send_frame(cfd, msg_run_result(msg.index, payload));
        send_frame(cfd, msg_run_result(msg.index, payload));  // duplicate
      }
    }
  }
}

TEST(Distributed, DuplicateResultsAreDiscardedByPlanIndex) {
  const std::string sock = temp_path("dup.sock");
  const pid_t worker = spawn_duplicating_worker("unix:" + sock);
  await_socket(sock);

  ExecutorOptions o;
  o.workers = {"unix:" + sock};
  o.heartbeat_sec = 5.0;  // the fake worker sends no heartbeats
  CampaignExecutor exec(o, stub_fn());
  const auto cfgs = make_configs(4);
  const auto results = exec.run_all(cfgs);
  stop_daemon(worker, SIGKILL);

  expect_matches_stub(cfgs, results);
  EXPECT_TRUE(exec.quarantined().empty());
  // Each duplicate for an already-completed index is discarded (the very
  // last one can arrive after the batch resolved and go unread).
  EXPECT_GE(exec.stats().duplicate_discards, 3);
}

// ---- daemon handshake + heartbeat (manual client) -------------------------

/// Read frames from `fd` until one parses, with a deadline.
bool read_msg(int fd, std::string& buf, TransportMsg& out, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const FrameSplit fs = try_unframe(buf);
    if (fs.status == FrameSplit::Status::kOk) {
      buf.erase(0, fs.consumed);
      out = parse_transport_msg(fs.payload);
      return true;
    }
    if (fs.status == FrameSplit::Status::kCorrupt) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    pollfd pfd{fd, POLLIN, 0};
    const int remain = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    if (::poll(&pfd, 1, std::max(1, remain)) <= 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

TEST(ServeDaemon, HandshakeAcksAndIdleHeartbeatsFlow) {
  const std::string sock = temp_path("hb.sock");
  const pid_t d = spawn_daemon("unix:" + sock, stub_fn(), /*jobs=*/3,
                               /*expected_fingerprint=*/0,
                               /*heartbeat_sec=*/0.1);
  await_socket(sock);

  std::string err;
  const int fd = connect_endpoint(parse_endpoint("unix:" + sock), &err);
  ASSERT_GE(fd, 0) << err;
  ASSERT_TRUE(send_frame(fd, msg_hello(0x77ull, 0)));
  std::string buf;
  TransportMsg msg;
  ASSERT_TRUE(read_msg(fd, buf, msg, 5000));
  EXPECT_EQ(msg.type, TransportMsgType::kHelloAck);
  EXPECT_EQ(msg.slots, 3u);
  // Stay idle: the daemon's heartbeat timer must beacon on its own.
  ASSERT_TRUE(read_msg(fd, buf, msg, 5000));
  EXPECT_EQ(msg.type, TransportMsgType::kHeartbeat);
  ::close(fd);
  stop_daemon(d);
}

TEST(Distributed, MergedRunsTraceByteIdenticalAcrossIdenticalCampaigns) {
  // Each daemon's workload stashes a deterministic capture per run, exactly
  // as the driver does for real traced runs; two identical 2-daemon
  // campaigns must merge to byte-identical runs-trace JSON no matter how
  // completions interleave across endpoints and pool slots.
  auto traced_fn = []() -> CampaignExecutor::CheckpointRunFn {
    return [](const RunConfig& c, CheckpointStore*) {
      obs::set_last_run_capture(synthetic_capture(c.run_seed));
      return stub_result(c);
    };
  };
  auto run_once = [&](const std::string& tag) {
    const std::string s1 = temp_path("runstrace_a" + tag + ".sock");
    const std::string s2 = temp_path("runstrace_b" + tag + ".sock");
    const pid_t d1 = spawn_daemon("unix:" + s1, traced_fn());
    const pid_t d2 = spawn_daemon("unix:" + s2, traced_fn());
    await_socket(s1);
    await_socket(s2);
    ExecutorOptions o;
    o.workers = {"unix:" + s1, "unix:" + s2};
    o.heartbeat_sec = 0.2;
    CampaignExecutor exec(o, stub_fn());
    const auto cfgs = make_configs(10);
    const auto results = exec.run_all(cfgs);
    stop_daemon(d1);
    stop_daemon(d2);
    EXPECT_EQ(results.size(), cfgs.size());
    EXPECT_EQ(exec.stats().captures.size(), cfgs.size());
    return campaign_runs_trace_json(exec.stats(), "00000000deadbeef");
  };
  const std::string first = run_once("1");
  const std::string second = run_once("2");
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

#endif  // DAV_TEST_POSIX

}  // namespace
}  // namespace dav
