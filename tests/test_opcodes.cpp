#include <gtest/gtest.h>

#include <set>

#include "fi/fault_model.h"
#include "fi/opcodes.h"

namespace dav {
namespace {

TEST(GpuOpcodes, ClassesAssigned) {
  EXPECT_EQ(op_class(GpuOpcode::kFFma), OpClass::kData);
  EXPECT_EQ(op_class(GpuOpcode::kLdg), OpClass::kMemory);
  EXPECT_EQ(op_class(GpuOpcode::kStg), OpClass::kMemory);
  EXPECT_EQ(op_class(GpuOpcode::kBra), OpClass::kControl);
  EXPECT_EQ(op_class(GpuOpcode::kBar), OpClass::kControl);
}

TEST(CpuOpcodes, ClassesAssigned) {
  EXPECT_EQ(op_class(CpuOpcode::kFma), OpClass::kData);
  EXPECT_EQ(op_class(CpuOpcode::kLoad), OpClass::kMemory);
  EXPECT_EQ(op_class(CpuOpcode::kLea), OpClass::kMemory);
  EXPECT_EQ(op_class(CpuOpcode::kJcc), OpClass::kControl);
  EXPECT_EQ(op_class(CpuOpcode::kRet), OpClass::kControl);
}

TEST(GpuOpcodes, NamesDefinedAndMostlyUnique) {
  std::set<std::string_view> names;
  for (int i = 0; i < kNumGpuOpcodes; ++i) {
    const auto name = to_string(static_cast<GpuOpcode>(i));
    EXPECT_NE(name, "?");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumGpuOpcodes));
}

TEST(CpuOpcodes, NamesDefined) {
  std::set<std::string_view> names;
  for (int i = 0; i < kNumCpuOpcodes; ++i) {
    const auto name = to_string(static_cast<CpuOpcode>(i));
    EXPECT_NE(name, "?");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumCpuOpcodes));
}

TEST(Opcodes, IsaSizesReasonable) {
  // The paper's ISAs have 171 (GPU) and 131 (CPU) opcodes; ours are smaller
  // but must cover all three architectural classes in both domains.
  EXPECT_GE(kNumGpuOpcodes, 30);
  EXPECT_GE(kNumCpuOpcodes, 25);
  int gpu_mem = 0, gpu_ctrl = 0, cpu_mem = 0, cpu_ctrl = 0;
  for (int i = 0; i < kNumGpuOpcodes; ++i) {
    const OpClass c = op_class(static_cast<GpuOpcode>(i));
    gpu_mem += c == OpClass::kMemory;
    gpu_ctrl += c == OpClass::kControl;
  }
  for (int i = 0; i < kNumCpuOpcodes; ++i) {
    const OpClass c = op_class(static_cast<CpuOpcode>(i));
    cpu_mem += c == OpClass::kMemory;
    cpu_ctrl += c == OpClass::kControl;
  }
  EXPECT_GT(gpu_mem, 0);
  EXPECT_GT(gpu_ctrl, 0);
  EXPECT_GT(cpu_mem, 0);
  EXPECT_GT(cpu_ctrl, 0);
  // CPU streams are memory/control heavy relative to GPU (paper §V-C).
  EXPECT_GT(cpu_mem + cpu_ctrl, gpu_mem + gpu_ctrl);
}

TEST(FaultModelStrings, Defined) {
  EXPECT_EQ(to_string(FaultDomain::kGpu), "GPU");
  EXPECT_EQ(to_string(FaultDomain::kCpu), "CPU");
  EXPECT_EQ(to_string(FaultModelKind::kTransient), "transient");
  EXPECT_EQ(to_string(FaultModelKind::kPermanent), "permanent");
  EXPECT_EQ(to_string(FaultOutcome::kSdc), "SDC");
  EXPECT_EQ(to_string(FaultOutcome::kHang), "hang");
}

}  // namespace
}  // namespace dav
