#include <gtest/gtest.h>

#include <cmath>

#include "agent/control.h"

namespace dav {
namespace {

constexpr double kDt = 0.1;

CpuEngine clean_engine() {
  CpuEngine eng;
  eng.configure({}, 0);
  return eng;
}

Waypoints straight_waypoints(double v_des, double lateral = 0.0,
                             double wp_dt = 0.5) {
  Waypoints wps;
  const double spacing = std::max(0.12, v_des * wp_dt);
  for (int i = 0; i < 4; ++i) {
    wps.pts[static_cast<std::size_t>(i)] = {spacing * (i + 1), lateral};
  }
  return wps;
}

TEST(RoutePlannerTest, RespectsSpeedLimit) {
  CpuEngine eng = clean_engine();
  RoadMap map(Polyline({{0, 0}, {500, 0}}), 3.5, 1, 0);
  map.add_speed_limit({0.0, 1e9, 9.0});
  RoutePlanner planner(eng, &map, 15.0, 0.0);
  EXPECT_NEAR(planner.plan_cruise(5.0, kDt), 9.0, 1e-9);
}

TEST(RoutePlannerTest, MissionSpeedWhenNoLimit) {
  CpuEngine eng = clean_engine();
  RoadMap map(Polyline({{0, 0}, {500, 0}}), 3.5, 1, 0);
  RoutePlanner planner(eng, &map, 12.0, 0.0);
  EXPECT_NEAR(planner.plan_cruise(5.0, kDt), 12.0, 1e-9);
}

TEST(RoutePlannerTest, CorneringEnvelopeSlowsForCurves) {
  CpuEngine eng = clean_engine();
  const Polyline route =
      RouteBuilder().straight(40.0).turn(M_PI / 2, 18.0).straight(40.0).build();
  RoadMap map(route, 3.5, 1, 0);
  RoutePlanner planner(eng, &map, 15.0, /*start_s=*/20.0);
  // 20 m before the curve: the 30 m lookahead sees it; sqrt(2.3*18) ~ 6.4.
  const double cruise = planner.plan_cruise(10.0, kDt);
  EXPECT_LT(cruise, 8.0);
  EXPECT_GT(cruise, 4.0);
}

TEST(RoutePlannerTest, DeadReckonsProgress) {
  CpuEngine eng = clean_engine();
  RoadMap map(Polyline({{0, 0}, {500, 0}}), 3.5, 1, 0);
  RoutePlanner planner(eng, &map, 12.0, 5.0);
  for (int i = 0; i < 10; ++i) planner.plan_cruise(10.0, kDt);
  EXPECT_NEAR(planner.progress(), 5.0 + 10.0 * 10 * kDt, 0.5);
  planner.reset(0.0);
  EXPECT_DOUBLE_EQ(planner.progress(), 0.0);
}

TEST(ControlUnit, AcceleratesTowardTarget) {
  CpuEngine eng = clean_engine();
  ControlUnit ctrl(eng, {});
  Actuation cmd;
  for (int i = 0; i < 20; ++i) {
    cmd = ctrl.act(straight_waypoints(10.0), /*v_meas=*/5.0, kDt, 1.0);
  }
  EXPECT_GT(cmd.throttle, 0.2);
  EXPECT_DOUBLE_EQ(cmd.brake, 0.0);
}

TEST(ControlUnit, BrakesWhenTooFast) {
  CpuEngine eng = clean_engine();
  ControlUnit ctrl(eng, {});
  Actuation cmd;
  for (int i = 0; i < 20; ++i) {
    cmd = ctrl.act(straight_waypoints(4.0), /*v_meas=*/10.0, kDt, 1.0);
  }
  EXPECT_GT(cmd.brake, 0.3);
  EXPECT_LT(cmd.throttle, 0.05);
}

TEST(ControlUnit, DecodesTargetSpeedFromSpacing) {
  CpuEngine eng = clean_engine();
  ControlUnit ctrl(eng, {});
  // v_meas == encoded speed: neither strong throttle nor brake.
  Actuation cmd;
  for (int i = 0; i < 20; ++i) {
    cmd = ctrl.act(straight_waypoints(8.0), 8.0, kDt, 1.0);
  }
  EXPECT_LT(cmd.throttle, 0.25);
  EXPECT_LT(cmd.brake, 0.1);
}

TEST(ControlUnit, SteersTowardLateralOffset) {
  CpuEngine eng = clean_engine();
  ControlUnit ctrl(eng, {});
  Actuation left;
  Actuation right;
  for (int i = 0; i < 10; ++i) {
    left = ctrl.act(straight_waypoints(8.0, +1.0), 8.0, kDt, 1.0);
  }
  ctrl.reset();
  for (int i = 0; i < 10; ++i) {
    right = ctrl.act(straight_waypoints(8.0, -1.0), 8.0, kDt, 1.0);
  }
  EXPECT_GT(left.steer, 0.05);
  EXPECT_LT(right.steer, -0.05);
}

TEST(ControlUnit, SteeringFadesAtCrawl) {
  CpuEngine eng = clean_engine();
  ControlUnit ctrl(eng, {});
  Actuation cmd;
  for (int i = 0; i < 10; ++i) {
    cmd = ctrl.act(straight_waypoints(1.0, +1.5), /*v_meas=*/1.0, kDt, 1.0);
  }
  EXPECT_NEAR(cmd.steer, 0.0, 1e-6);
}

TEST(ControlUnit, StandstillLatchHoldsDeterministically) {
  CpuEngine eng = clean_engine();
  ControlUnit ctrl(eng, {});
  // Stop intent at low measured speed -> latch engages.
  Actuation cmd;
  for (int i = 0; i < 5; ++i) {
    cmd = ctrl.act(straight_waypoints(0.0), /*v_meas=*/0.3, kDt, 1.0);
  }
  EXPECT_DOUBLE_EQ(cmd.brake, 0.45);
  EXPECT_DOUBLE_EQ(cmd.throttle, 0.0);
  EXPECT_DOUBLE_EQ(cmd.steer, 0.0);
  // Small target below the hysteresis band stays latched.
  cmd = ctrl.act(straight_waypoints(0.8), 0.0, kDt, 1.0);
  EXPECT_DOUBLE_EQ(cmd.brake, 0.45);
  // A clear go signal releases the latch.
  for (int i = 0; i < 10; ++i) {
    cmd = ctrl.act(straight_waypoints(8.0), 0.0, kDt, 1.0);
  }
  EXPECT_GT(cmd.throttle, 0.1);
  EXPECT_NEAR(cmd.brake, 0.0, 1e-3);  // pedal EMA decays exponentially
}

TEST(ControlUnit, FirstStepSeedsSlewFromMeasuredSpeed) {
  CpuEngine eng = clean_engine();
  ControlUnit ctrl(eng, {});
  // Matching target: the very first command must not brake hard.
  const Actuation cmd = ctrl.act(straight_waypoints(10.0), 10.0, kDt, 1.0);
  EXPECT_LT(cmd.brake, 0.2);
}

TEST(ControlUnit, CpuGainScalesTarget) {
  CpuEngine eng = clean_engine();
  ControlUnit a(eng, {});
  Actuation with_gain;
  for (int i = 0; i < 15; ++i) {
    with_gain = a.act(straight_waypoints(8.0), 8.0, kDt, /*cpu_gain=*/1.5);
  }
  // Gain 1.5 raises the decoded target -> throttle rises.
  EXPECT_GT(with_gain.throttle, 0.15);
}

TEST(ControlUnit, ResetClearsState) {
  CpuEngine eng = clean_engine();
  ControlUnit ctrl(eng, {});
  for (int i = 0; i < 20; ++i) {
    ctrl.act(straight_waypoints(10.0, 1.0), 5.0, kDt, 1.0);
  }
  ctrl.reset();
  const Actuation cmd = ctrl.act(straight_waypoints(5.0), 5.0, kDt, 1.0);
  EXPECT_LT(cmd.throttle, 0.3);  // integral gone
  EXPECT_NEAR(cmd.steer, 0.0, 0.2);
}

TEST(ControlUnit, InstrumentationCountsGrow) {
  CpuEngine eng = clean_engine();
  ControlUnit ctrl(eng, {});
  ctrl.act(straight_waypoints(8.0), 8.0, kDt, 1.0);
  EXPECT_GT(eng.total_dyn_instructions(), 50u);
  EXPECT_GT(eng.op_count(CpuOpcode::kLoad), 10u);
  EXPECT_GT(eng.op_count(CpuOpcode::kLoopCnt), 0u);
}

}  // namespace
}  // namespace dav
