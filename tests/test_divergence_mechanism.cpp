// The paper's central mechanism, as properties: fault-free inter-agent
// divergence is small and bounded (§III-C), while register-level corruption
// of data-diverse computation produces visibly divergent outputs.
#include <gtest/gtest.h>

#include <algorithm>

#include "campaign/campaign.h"
#include "campaign/metrics.h"

namespace dav {
namespace {

CampaignScale tiny_scale() {
  CampaignScale s;
  s.golden_runs = 3;
  s.training_runs_per_scenario = 1;
  s.safety_duration_sec = 15.0;
  s.long_route_duration_sec = 20.0;
  return s;
}

double max_smoothed_channel(const RunResult& r, std::size_t rw) {
  DivergenceSignal sig(rw);
  double worst = 0.0;
  for (const auto& o : r.observations) {
    if (o.state.v < 1.0) continue;
    sig.push(o.delta);
    if (!sig.full()) continue;
    const auto sm = sig.smoothed();
    worst = std::max({worst, sm.throttle, sm.brake, sm.steer});
  }
  return worst;
}

TEST(DivergenceMechanism, FaultFreeDivergenceBounded) {
  // Paper §III-C: "the average difference between adjacent actuation values
  // over the rolling window ... are small and bounded".
  CampaignManager mgr(tiny_scale(), 2022);
  for (ScenarioId scenario :
       {ScenarioId::kLeadSlowdown, ScenarioId::kLongRoute42}) {
    const auto runs = mgr.golden(scenario, AgentMode::kRoundRobin, 2);
    for (const auto& r : runs) {
      EXPECT_LT(max_smoothed_channel(r, 3), 0.6) << to_string(scenario);
    }
  }
}

TEST(DivergenceMechanism, ConvFaultProducesVisibleDivergence) {
  // A permanent fault on the conv-accumulate opcode corrupts both
  // time-multiplexed agents, but their bit-diverse inputs make the corrupted
  // outputs differ (paper §III-B "temporal data diversity").
  CampaignManager mgr(tiny_scale(), 2022);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  plan.target_opcode = static_cast<int>(GpuOpcode::kFMacc);
  plan.bit = 21;
  cfg.fault = plan;
  cfg.run_seed = 12;
  const RunResult faulty = run_experiment(cfg);
  cfg.fault = {};
  const RunResult golden = run_experiment(cfg);
  EXPECT_GT(max_smoothed_channel(faulty, 3),
            3.0 * max_smoothed_channel(golden, 3));
}

TEST(DivergenceMechanism, TransientAffectsOnlyOneAgentsOutputStream) {
  // A transient fault lands in one agent; the other agent's outputs remain
  // fault-free, which is what the comparison detects (paper §I).
  CampaignManager mgr(tiny_scale(), 2022);
  const ExecutionProfile prof = mgr.profile(
      ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin, FaultDomain::kGpu);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
  FaultPlan plan;
  plan.kind = FaultModelKind::kTransient;
  plan.domain = FaultDomain::kGpu;
  plan.target_dyn_index = prof.total_dyn_instructions / 2;
  plan.bit = 30;
  cfg.fault = plan;
  cfg.run_seed = 12;
  const RunResult r = run_experiment(cfg);
  EXPECT_TRUE(r.fault_activated);
}

TEST(DivergenceMechanism, FdModeFaultInPrimaryOnly) {
  // FD-ADS: the fault lives in engine set 0; the replica is clean, so the
  // same-step comparison sees any unmasked corruption directly.
  CampaignManager mgr(tiny_scale(), 2022);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kDuplicate);
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  plan.target_opcode = static_cast<int>(GpuOpcode::kFMacc);
  plan.bit = 21;
  cfg.fault = plan;
  cfg.run_seed = 12;
  const RunResult faulty = run_experiment(cfg);
  cfg.fault = {};
  const RunResult golden = run_experiment(cfg);
  // Golden FD replicas are bit-identical (deltas ~0); the faulty run is not.
  EXPECT_LT(max_smoothed_channel(golden, 3), 1e-9);
  EXPECT_GT(max_smoothed_channel(faulty, 3), 0.05);
}

TEST(DivergenceMechanism, GoldenTrajectoriesTight) {
  // Paper Fig 6: golden-run trajectory divergence is decimeter-scale.
  CampaignManager mgr(tiny_scale(), 2022);
  const auto runs =
      mgr.golden(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin, 3);
  const Trajectory base = golden_baseline(runs);
  for (const auto& r : runs) {
    EXPECT_LT(run_divergence(r, base), 1.0);
  }
}

}  // namespace
}  // namespace dav
