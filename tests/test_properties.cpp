// Cross-cutting property tests: invariants that should hold across seeds,
// parameters and module boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "agent/perception.h"
#include "core/threshold_lut.h"
#include "fi/engine.h"
#include "sensors/sensor_rig.h"
#include "sim/world.h"

namespace dav {
namespace {

// ---------------------------------------------------------------------------
// Engine: transient targeting across bulk/exec boundaries.
// ---------------------------------------------------------------------------

CrashHangModel silent() {
  CrashHangModel m;
  m.p_crash_data = m.p_hang_data = m.p_crash_mem = m.p_hang_mem = 0.0;
  m.p_crash_ctrl = m.p_hang_ctrl = 0.0;
  return m;
}

class TransientBoundary : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransientBoundary, ActivatesExactlyWhenIndexIsExecuted) {
  // Instruction stream: 5 exec, bulk(10), 5 exec  -> indices 0..19.
  const std::uint64_t target = GetParam();
  GpuEngine eng;
  FaultPlan p;
  p.kind = FaultModelKind::kTransient;
  p.domain = FaultDomain::kGpu;
  p.target_dyn_index = target;
  p.bit = 1;
  eng.configure(p, 1, silent());
  for (int i = 0; i < 5; ++i) eng.exec(GpuOpcode::kFAdd, 1.0f);
  eng.bulk(GpuOpcode::kLdg, 10);
  for (int i = 0; i < 5; ++i) eng.exec(GpuOpcode::kFMul, 1.0f);
  EXPECT_EQ(eng.fault_activated(), target < 20u) << target;
}

INSTANTIATE_TEST_SUITE_P(Indices, TransientBoundary,
                         ::testing::Values(0u, 4u, 5u, 14u, 15u, 19u, 20u,
                                           100u));

TEST(EngineProperty, CountsAreExact) {
  GpuEngine eng;
  eng.configure({}, 0);
  for (int i = 0; i < 17; ++i) eng.exec(GpuOpcode::kFAdd, 1.0f);
  eng.bulk(GpuOpcode::kLdg, 100);
  eng.bulk(GpuOpcode::kLdg, 23);
  EXPECT_EQ(eng.op_count(GpuOpcode::kFAdd), 17u);
  EXPECT_EQ(eng.op_count(GpuOpcode::kLdg), 123u);
  EXPECT_EQ(eng.total_dyn_instructions(), 140u);
}

// ---------------------------------------------------------------------------
// LUT: monotonicity in margin and training data.
// ---------------------------------------------------------------------------

TEST(LutProperty, MarginMonotone) {
  VehicleState s;
  s.v = 10.0;
  LutConfig lo_cfg;
  lo_cfg.margin = 1.1;
  LutConfig hi_cfg;
  hi_cfg.margin = 1.6;
  ThresholdLut lo(lo_cfg);
  ThresholdLut hi(hi_cfg);
  lo.observe(s, {0.4, 0.3, 0.2});
  hi.observe(s, {0.4, 0.3, 0.2});
  EXPECT_LT(lo.thresholds(s).throttle, hi.thresholds(s).throttle);
  EXPECT_LT(lo.thresholds(s).steer, hi.thresholds(s).steer);
}

TEST(LutProperty, MoreTrainingNeverLowersThresholds) {
  VehicleState s;
  s.v = 8.0;
  ThresholdLut lut;
  lut.observe(s, {0.2, 0.2, 0.2});
  const double before = lut.thresholds(s).throttle;
  lut.observe(s, {0.1, 0.1, 0.1});  // smaller observation
  EXPECT_DOUBLE_EQ(lut.thresholds(s).throttle, before);
  lut.observe(s, {0.5, 0.5, 0.5});  // larger observation
  EXPECT_GT(lut.thresholds(s).throttle, before);
}

// ---------------------------------------------------------------------------
// Perception: estimate stability across noise seeds.
// ---------------------------------------------------------------------------

class PerceptionSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PerceptionSeedSweep, ObstacleEstimateStableAcrossNoise) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  IdmParams idm;
  sc.npcs.emplace_back(1, sc.ego_start_s + 20.0, 0.0, 10.0, idm);
  World world(std::move(sc));
  SensorRig rig(front_camera_rig(), GetParam());
  GpuEngine eng;
  eng.configure({}, 0);
  PerceptionConfig cfg;
  cfg.center_cam = front_camera_rig()[1];
  Perception perception(eng, cfg);
  perception.process(rig.capture(world, 0).cameras);
  const PerceptionOutput p = perception.process(rig.capture(world, 1).cameras);
  ASSERT_TRUE(p.obstacle_valid);
  EXPECT_NEAR(p.obstacle_distance, 17.75, 4.5);  // rear face at 20 - 2.25
  EXPECT_EQ(p.gain, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerceptionSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---------------------------------------------------------------------------
// World: CVIP monotone while closing on a stopped lead.
// ---------------------------------------------------------------------------

TEST(WorldProperty, CvipDecreasesWhileClosing) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  IdmParams idm;
  idm.desired_speed = 0.0;
  sc.npcs.emplace_back(1, sc.ego_start_s + 60.0, 0.0, 0.0, idm);
  World world(std::move(sc));
  double prev = world.cvip();
  for (int i = 0; i < 60; ++i) {
    world.step({0.5, 0.0, 0.0}, 0.05);
    EXPECT_LE(world.cvip(), prev + 1e-6);
    prev = world.cvip();
  }
}

TEST(WorldProperty, TrajectorySampledEveryStep) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  for (int i = 0; i < 25; ++i) world.step({0.3, 0.0, 0.0}, 0.05);
  EXPECT_EQ(world.trajectory().size(), 26u);  // initial + 25 steps
}

// ---------------------------------------------------------------------------
// Sensors: frame time/step bookkeeping.
// ---------------------------------------------------------------------------

TEST(SensorProperty, FrameTimeTracksWorld) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  SensorRig rig(front_camera_rig(), 7);
  for (int i = 0; i < 5; ++i) world.step({0.2, 0.0, 0.0}, 0.05);
  const SensorFrame frame = rig.capture(world, 5);
  EXPECT_NEAR(frame.time, 0.25, 1e-9);
  EXPECT_EQ(frame.step, 5);
}

}  // namespace
}  // namespace dav
