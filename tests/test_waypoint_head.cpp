#include <gtest/gtest.h>

#include <cmath>

#include "agent/waypoint_head.h"

namespace dav {
namespace {

GpuEngine clean_engine() {
  GpuEngine eng;
  eng.configure({}, 0);
  return eng;
}

PerceptionOutput clear_road() {
  PerceptionOutput p;
  p.obstacle_valid = false;
  p.obstacle_distance = 200.0;
  return p;
}

double decoded_speed(const Waypoints& wps, double wp_dt = 0.5) {
  double sum = 0.0;
  Vec2 prev{0, 0};
  for (const Vec2& wp : wps.pts) {
    sum += distance(prev, wp);
    prev = wp;
  }
  return sum / 4.0 / wp_dt;
}

TEST(WaypointHead, CruiseSpeedOnClearRoad) {
  GpuEngine eng = clean_engine();
  const Waypoints wps = waypoint_head(eng, clear_road(), 8.0, 10.0, {});
  EXPECT_NEAR(decoded_speed(wps), 10.0, 0.3);
}

TEST(WaypointHead, ObstacleLimitsSpeed) {
  GpuEngine eng = clean_engine();
  PerceptionOutput p = clear_road();
  p.obstacle_valid = true;
  p.obstacle_distance = 15.0;
  WaypointHeadConfig cfg;
  const Waypoints wps = waypoint_head(eng, p, 8.0, 10.0, cfg);
  const double gap = 15.0 - cfg.stop_margin;
  const double expected = std::min(gap / cfg.headway,
                                   std::sqrt(2.0 * cfg.comfort_decel * gap));
  EXPECT_NEAR(decoded_speed(wps), std::min(10.0, expected), 0.5);
}

TEST(WaypointHead, StopsInsideMargin) {
  GpuEngine eng = clean_engine();
  PerceptionOutput p = clear_road();
  p.obstacle_valid = true;
  p.obstacle_distance = 4.0;  // inside stop margin
  const Waypoints wps = waypoint_head(eng, p, 3.0, 10.0, {});
  EXPECT_LT(decoded_speed(wps), 0.5);
}

TEST(WaypointHead, LaneOffsetShiftsWaypointsLaterally) {
  GpuEngine eng = clean_engine();
  PerceptionOutput p = clear_road();
  p.lane_offset = 0.8;
  const Waypoints wps = waypoint_head(eng, p, 8.0, 10.0, {});
  for (const Vec2& wp : wps.pts) EXPECT_NEAR(wp.y, 0.8, 1e-5);
}

TEST(WaypointHead, HeadingSlopeTiltsPath) {
  GpuEngine eng = clean_engine();
  PerceptionOutput p = clear_road();
  p.heading_slope = 0.1;
  const Waypoints wps = waypoint_head(eng, p, 8.0, 10.0, {});
  EXPECT_GT(wps.pts[3].y, wps.pts[0].y);
  EXPECT_NEAR(wps.pts[3].y, 0.1 * wps.pts[3].x, 1e-4);
}

TEST(WaypointHead, MonotoneForwardSpacing) {
  GpuEngine eng = clean_engine();
  const Waypoints wps = waypoint_head(eng, clear_road(), 8.0, 10.0, {});
  for (int i = 1; i < 4; ++i) {
    EXPECT_GT(wps.pts[static_cast<std::size_t>(i)].x,
              wps.pts[static_cast<std::size_t>(i - 1)].x);
  }
}

TEST(WaypointHead, SideWarningPreventsAcceleration) {
  GpuEngine eng = clean_engine();
  PerceptionOutput p = clear_road();
  p.side_warning = true;
  const Waypoints wps = waypoint_head(eng, p, /*v_meas=*/6.0, 10.0, {});
  EXPECT_LE(decoded_speed(wps), 6.3);
}

class ObstacleEnvelopeSweep : public ::testing::TestWithParam<double> {};

TEST_P(ObstacleEnvelopeSweep, SpeedMonotoneInDistance) {
  GpuEngine eng = clean_engine();
  PerceptionOutput near_p = clear_road();
  near_p.obstacle_valid = true;
  near_p.obstacle_distance = GetParam();
  PerceptionOutput far_p = near_p;
  far_p.obstacle_distance = GetParam() + 8.0;
  const double v_near =
      decoded_speed(waypoint_head(eng, near_p, 8.0, 12.0, {}));
  const double v_far = decoded_speed(waypoint_head(eng, far_p, 8.0, 12.0, {}));
  EXPECT_LE(v_near, v_far + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Distances, ObstacleEnvelopeSweep,
                         ::testing::Values(6.0, 10.0, 14.0, 20.0, 30.0));

}  // namespace
}  // namespace dav
