#include <gtest/gtest.h>

#include "sensors/diversity.h"

namespace dav {
namespace {

TEST(ImageBitDiversity, IdenticalImagesAllZeroBin) {
  Image a(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) a.set(x, y, {100, 150, 200});
  }
  const CountHistogram h = image_bit_diversity(a, a);
  EXPECT_EQ(h.total(), 64u);
  EXPECT_EQ(h.count(0), 64u);
  EXPECT_EQ(h.percentile(50), 0u);
}

TEST(ImageBitDiversity, SinglePixelSingleBit) {
  Image a(4, 4);
  Image b(4, 4);
  Rgb c = b.get(0, 0);
  c.r ^= 0x01;
  b.set(0, 0, c);
  const CountHistogram h = image_bit_diversity(a, b);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(0), 15u);
}

TEST(ImageBitDiversity, MaxDiversityIs24) {
  Image a(2, 2);
  Image b(2, 2);
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) {
      a.set(x, y, {0x00, 0x00, 0x00});
      b.set(x, y, {0xFF, 0xFF, 0xFF});
    }
  }
  const CountHistogram h = image_bit_diversity(a, b);
  EXPECT_EQ(h.count(24), 4u);
  EXPECT_EQ(h.percentile(90), 24u);
}

TEST(ImageBitDiversity, SizeMismatchThrows) {
  EXPECT_THROW(image_bit_diversity(Image(2, 2), Image(3, 2)),
               std::invalid_argument);
}

TEST(FloatBitDiversity, IdenticalAndSign) {
  const std::vector<float> a{1.0f, 2.0f};
  const CountHistogram same = float_bit_diversity(a, a);
  EXPECT_EQ(same.count(0), 2u);
  const std::vector<float> b{-1.0f, 2.0f};
  const CountHistogram diff = float_bit_diversity(a, b);
  EXPECT_EQ(diff.count(1), 1u);  // sign bit only
}

TEST(FloatBitDiversity, SizeMismatchThrows) {
  EXPECT_THROW(float_bit_diversity({1.0f}, {1.0f, 2.0f}),
               std::invalid_argument);
}

TEST(BBoxCenterShift, Euclidean) {
  BBox2 a{0, 0, 10, 10};
  BBox2 b{3, 4, 13, 14};
  EXPECT_DOUBLE_EQ(bbox_center_shift(a, b), 5.0);
  EXPECT_DOUBLE_EQ(bbox_center_shift(a, a), 0.0);
}

TEST(Accumulate, AddsIntoSharedHistogram) {
  CountHistogram h(25);
  Image a(4, 4);
  Image b(4, 4);
  accumulate_image_bit_diversity(a, b, h);
  accumulate_image_bit_diversity(a, b, h);
  EXPECT_EQ(h.total(), 32u);
}

}  // namespace
}  // namespace dav
