#include <gtest/gtest.h>

#include <cmath>

#include "sim/vehicle.h"
#include "util/geometry.h"

namespace dav {
namespace {

constexpr double kDt = 0.05;

VehicleState cruise_state(double v) {
  VehicleState s;
  s.v = v;
  return s;
}

TEST(Vehicle, FullThrottleAcceleratesFromRest) {
  VehicleSpec spec;
  VehicleState s = step_vehicle(cruise_state(0.0), {1.0, 0.0, 0.0}, spec, kDt);
  EXPECT_GT(s.v, 0.0);
  EXPECT_GT(s.a, 0.0);
  EXPECT_GT(s.pose.pos.x, 0.0);
  EXPECT_NEAR(s.pose.pos.y, 0.0, 1e-12);
}

TEST(Vehicle, BrakingStopsButNeverReverses) {
  VehicleSpec spec;
  VehicleState s = cruise_state(1.0);
  for (int i = 0; i < 100; ++i) {
    s = step_vehicle(s, {0.0, 1.0, 0.0}, spec, kDt);
  }
  EXPECT_DOUBLE_EQ(s.v, 0.0);
  // Position settled, no reverse motion.
  const double x = s.pose.pos.x;
  s = step_vehicle(s, {0.0, 1.0, 0.0}, spec, kDt);
  EXPECT_DOUBLE_EQ(s.pose.pos.x, x);
}

TEST(Vehicle, TopSpeedIsBounded) {
  VehicleSpec spec;
  VehicleState s = cruise_state(0.0);
  for (int i = 0; i < 10000; ++i) {
    s = step_vehicle(s, {1.0, 0.0, 0.0}, spec, kDt);
  }
  EXPECT_LE(s.v, spec.max_speed);
  EXPECT_GT(s.v, spec.max_speed * 0.5);
}

TEST(Vehicle, DragDeceleratesCoasting) {
  VehicleSpec spec;
  VehicleState s = cruise_state(10.0);
  s = step_vehicle(s, {0.0, 0.0, 0.0}, spec, kDt);
  EXPECT_LT(s.v, 10.0);
  EXPECT_LT(s.a, 0.0);
}

TEST(Vehicle, SteeringTurnsLeftForPositiveSteer) {
  VehicleSpec spec;
  VehicleState s = cruise_state(10.0);
  for (int i = 0; i < 20; ++i) {
    s = step_vehicle(s, {0.3, 0.0, 0.5}, spec, kDt);
  }
  EXPECT_GT(s.pose.yaw, 0.0);
  EXPECT_GT(s.omega, 0.0);
  EXPECT_GT(s.pose.pos.y, 0.0);
}

TEST(Vehicle, TurningRadiusMatchesBicycleModel) {
  VehicleSpec spec;
  // Constant speed, constant steer -> circle of radius L / tan(delta).
  const double steer = 0.5;
  const double delta = steer * spec.max_steer_angle;
  const double expected_radius = spec.wheelbase / std::tan(delta);
  VehicleState s = cruise_state(5.0);
  // Maintain speed with mild throttle compensation; use small dt.
  double max_y = 0.0;
  for (int i = 0; i < 4000; ++i) {
    Actuation cmd{0.0, 0.0, steer};
    cmd.throttle = s.v < 5.0 ? 0.4 : 0.0;
    s = step_vehicle(s, cmd, spec, 0.01);
    max_y = std::max(max_y, s.pose.pos.y);
  }
  // The trajectory's max lateral excursion approximates the circle diameter.
  EXPECT_NEAR(max_y / 2.0, expected_radius, expected_radius * 0.2);
}

TEST(Vehicle, DerivedAlphaConsistent) {
  VehicleSpec spec;
  VehicleState s = cruise_state(8.0);
  const VehicleState next = step_vehicle(s, {0.0, 0.0, 0.4}, spec, kDt);
  EXPECT_NEAR(next.alpha, (next.omega - s.omega) / kDt, 1e-9);
}

TEST(Vehicle, ClampsOutOfRangeCommands) {
  VehicleSpec spec;
  const VehicleState a =
      step_vehicle(cruise_state(5.0), {5.0, -1.0, 3.0}, spec, kDt);
  const VehicleState b =
      step_vehicle(cruise_state(5.0), {1.0, 0.0, 1.0}, spec, kDt);
  EXPECT_DOUBLE_EQ(a.v, b.v);
  EXPECT_DOUBLE_EQ(a.omega, b.omega);
}

TEST(VehicleObb, MatchesSpecDimensions) {
  VehicleSpec spec;
  VehicleState s;
  s.pose.pos = {3.0, 4.0};
  const Obb box = vehicle_obb(s, spec);
  EXPECT_DOUBLE_EQ(box.half_length, spec.length / 2);
  EXPECT_DOUBLE_EQ(box.half_width, spec.width / 2);
  EXPECT_EQ(box.pose.pos, Vec2(3.0, 4.0));
}

class VehicleEnergyProperty : public ::testing::TestWithParam<double> {};

TEST_P(VehicleEnergyProperty, SpeedNonNegativeAndFinite) {
  VehicleSpec spec;
  VehicleState s = cruise_state(GetParam());
  for (int i = 0; i < 200; ++i) {
    const double thr = (i % 7) / 6.0;
    const double brk = (i % 5) / 8.0;
    const double str = ((i % 11) - 5) / 5.0;
    s = step_vehicle(s, {thr, brk, str}, spec, kDt);
    ASSERT_GE(s.v, 0.0);
    ASSERT_TRUE(std::isfinite(s.pose.pos.x));
    ASSERT_TRUE(std::isfinite(s.pose.yaw));
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, VehicleEnergyProperty,
                         ::testing::Values(0.0, 1.0, 5.0, 10.0, 20.0, 29.0));

}  // namespace
}  // namespace dav
