#include <gtest/gtest.h>

#include <cstdlib>

#include "campaign/campaign.h"
#include "campaign/metrics.h"
#include "campaign/resources.h"

namespace dav {
namespace {

CampaignScale tiny_scale() {
  CampaignScale s;
  s.transient_runs = 4;
  s.permanent_repeats = 1;
  s.golden_runs = 3;
  s.training_runs_per_scenario = 1;
  s.safety_duration_sec = 12.0;
  s.long_route_duration_sec = 20.0;
  return s;
}

TEST(CampaignScaleTest, FromEnvScalesCounts) {
  setenv("DAV_SCALE", "0.5", 1);
  const CampaignScale s = CampaignScale::from_env();
  EXPECT_EQ(s.transient_runs, 20);
  EXPECT_EQ(s.golden_runs, 5);
  EXPECT_GE(s.permanent_repeats, 1);
  unsetenv("DAV_SCALE");
  const CampaignScale d = CampaignScale::from_env();
  EXPECT_EQ(d.transient_runs, 40);
}

TEST(CampaignManagerTest, GoldenRunsVaryByNoiseOnly) {
  CampaignManager mgr(tiny_scale(), 7);
  const auto runs =
      mgr.golden(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin, 3);
  ASSERT_EQ(runs.size(), 3u);
  for (const auto& r : runs) {
    EXPECT_FALSE(r.collision);
    EXPECT_FALSE(r.due);
    EXPECT_EQ(r.outcome, FaultOutcome::kMasked);
    EXPECT_GT(r.steps, 100);
  }
  // Sensor-noise nondeterminism: trajectories differ but only slightly.
  const double div = max_divergence(runs[0].trajectory, runs[1].trajectory);
  EXPECT_GT(div, 0.0);
  EXPECT_LT(div, 1.0);
}

TEST(CampaignManagerTest, ProfileCountsInstructions) {
  CampaignManager mgr(tiny_scale(), 7);
  const ExecutionProfile gpu =
      mgr.profile(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin,
                  FaultDomain::kGpu);
  const ExecutionProfile cpu =
      mgr.profile(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin,
                  FaultDomain::kCpu);
  EXPECT_GT(gpu.total_dyn_instructions, 1000000u);
  EXPECT_GT(cpu.total_dyn_instructions, 1000u);
  EXPECT_GT(gpu.total_dyn_instructions, cpu.total_dyn_instructions);
}

TEST(CampaignManagerTest, FiCampaignSizes) {
  CampaignManager mgr(tiny_scale(), 7);
  const auto trans =
      mgr.fi_campaign(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin,
                      FaultDomain::kGpu, FaultModelKind::kTransient);
  EXPECT_EQ(trans.size(), 4u);
  const auto perm =
      mgr.fi_campaign(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin,
                      FaultDomain::kCpu, FaultModelKind::kPermanent);
  EXPECT_EQ(perm.size(), static_cast<std::size_t>(kNumCpuOpcodes));
}

TEST(CampaignManagerTest, TrainingObservationsFromLongScenarios) {
  CampaignManager mgr(tiny_scale(), 7);
  const auto obs = mgr.training_observations(AgentMode::kRoundRobin);
  EXPECT_EQ(obs.size(), 3u);  // one run per training scenario
  for (const auto& run : obs) EXPECT_GT(run.size(), 100u);
}

TEST(Metrics, GoldenBaselineAndDivergence) {
  CampaignManager mgr(tiny_scale(), 7);
  const auto runs =
      mgr.golden(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin, 3);
  const Trajectory base = golden_baseline(runs);
  EXPECT_GT(base.size(), 100u);
  for (const auto& r : runs) {
    EXPECT_LT(run_divergence(r, base), 0.8);
  }
}

TEST(Metrics, IsPositiveRules) {
  Trajectory base;
  base.push({0, 0});
  base.push({1, 0});
  RunResult run;
  run.trajectory.push({0, 0});
  run.trajectory.push({1, 5.0});
  EXPECT_TRUE(is_positive(run, base, 2.0));
  EXPECT_FALSE(is_positive(run, base, 6.0));
  // A DUE run without collision is not a silent hazard.
  run.due = true;
  EXPECT_FALSE(is_positive(run, base, 2.0));
  run.collision = true;
  EXPECT_TRUE(is_positive(run, base, 2.0));
}

TEST(Metrics, DetectRunPrefersEarlierAlarm) {
  ThresholdLut lut;
  RunResult run;
  run.due = true;
  run.due_time = 5.0;
  const Detection d = detect_run(run, lut, 3);
  EXPECT_TRUE(d.alarm);
  EXPECT_DOUBLE_EQ(d.time, 5.0);
}

TEST(Metrics, SummarizeCampaignCounts) {
  Trajectory base;
  for (int i = 0; i < 10; ++i) base.push({i * 1.0, 0.0});
  std::vector<RunResult> runs(4);
  for (auto& r : runs) {
    for (int i = 0; i < 10; ++i) r.trajectory.push({i * 1.0, 0.0});
    r.fault_activated = true;
  }
  runs[0].collision = true;
  runs[1].outcome = FaultOutcome::kCrash;
  runs[1].due = true;
  runs[2].trajectory = Trajectory{};
  for (int i = 0; i < 10; ++i) runs[2].trajectory.push({i * 1.0, 3.0});
  const CampaignSummary s = summarize_campaign(runs, base, 2.0);
  EXPECT_EQ(s.total, 4);
  EXPECT_EQ(s.active, 4);
  EXPECT_EQ(s.hang_crash, 1);
  EXPECT_EQ(s.accidents, 1);
  EXPECT_EQ(s.traj_violations, 1);
}

TEST(Metrics, EvaluateDetectionExcludesPlainDueRuns) {
  ThresholdLut lut;  // untrained: floors only
  Trajectory base;
  for (int i = 0; i < 5; ++i) base.push({i * 1.0, 0.0});
  std::vector<RunResult> fi(2);
  for (auto& r : fi) {
    for (int i = 0; i < 5; ++i) r.trajectory.push({i * 1.0, 0.0});
  }
  fi[0].due = true;  // DUE, no collision: excluded
  const DetectionEval ev = evaluate_detection(fi, {}, base, lut, 3, 2.0);
  EXPECT_EQ(ev.confusion.total(), 1u);
}

TEST(Resources, ModesScaleAsExpected) {
  CampaignManager mgr(tiny_scale(), 7);
  RunConfig single_cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kSingle);
  single_cfg.run_seed = 3;
  const RunResult single = run_experiment(single_cfg);

  RunConfig rr_cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
  rr_cfg.run_seed = 3;
  const RunResult rr = run_experiment(rr_cfg);

  RunConfig fd_cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kDuplicate);
  fd_cfg.run_seed = 3;
  const RunResult fd = run_experiment(fd_cfg);

  const ResourceUsage us = measure_resources(single, single);
  const ResourceUsage ur = measure_resources(rr, single);
  const ResourceUsage uf = measure_resources(fd, single);

  EXPECT_NEAR(us.gpu_util_pct, kNominalSingleGpuPct, 1e-9);
  EXPECT_NEAR(us.cpu_util_pct, kNominalSingleCpuPct, 1e-9);
  // DiverseAV: same per-processor utilization ballpark, one processor pair.
  EXPECT_NEAR(ur.gpu_util_pct, us.gpu_util_pct, us.gpu_util_pct * 0.25);
  EXPECT_EQ(ur.processors, 1);
  // FD: two processor pairs, per-processor utilization like single.
  EXPECT_EQ(uf.processors, 2);
  EXPECT_NEAR(uf.gpu_util_pct, us.gpu_util_pct, us.gpu_util_pct * 0.25);
  // Memory: both redundant configurations hold ~2x the single-agent state.
  EXPECT_NEAR(ur.vram_kb / us.vram_kb, 2.0, 0.4);
  EXPECT_NEAR(uf.vram_kb / us.vram_kb, 2.0, 0.4);
}

TEST(Driver, RecordTracesProducesAlignedSeries) {
  CampaignManager mgr(tiny_scale(), 7);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
  cfg.record_traces = true;
  cfg.run_seed = 5;
  const RunResult r = run_experiment(cfg);
  EXPECT_EQ(r.time_trace.size(), r.throttle_trace.size());
  EXPECT_EQ(r.time_trace.size(), r.brake_trace.size());
  EXPECT_EQ(r.time_trace.size(), r.cvip_trace.size());
  EXPECT_EQ(r.time_trace.size(), r.acting_agent_trace.size());
  EXPECT_GT(r.time_trace.size(), 100u);
}

TEST(Driver, CrashFaultYieldsDueAndFailback) {
  CampaignManager mgr(tiny_scale(), 7);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  plan.target_opcode = static_cast<int>(GpuOpcode::kLdg);  // memory class
  plan.bit = 4;
  cfg.fault = plan;
  // Try a few seeds: the memory-class permanent lethality is ~0.95.
  bool saw_due = false;
  for (std::uint64_t seed = 1; seed <= 5 && !saw_due; ++seed) {
    cfg.run_seed = seed;
    const RunResult r = run_experiment(cfg);
    if (r.due) {
      saw_due = true;
      EXPECT_TRUE(r.outcome == FaultOutcome::kCrash ||
                  r.outcome == FaultOutcome::kHang);
      EXPECT_GE(r.due_time, 0.0);
      // Failback brings the vehicle to a stop: the run ends early.
      EXPECT_LT(r.duration, 29.9);
    }
  }
  EXPECT_TRUE(saw_due);
}

TEST(Driver, SeedsAreReproducible) {
  CampaignManager mgr(tiny_scale(), 7);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
  cfg.run_seed = 11;
  const RunResult a = run_experiment(cfg);
  const RunResult b = run_experiment(cfg);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_DOUBLE_EQ(max_divergence(a.trajectory, b.trajectory), 0.0);
}

}  // namespace
}  // namespace dav
