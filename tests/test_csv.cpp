#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace dav {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/dav_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"t", "throttle", "name"});
    csv << 0.05 << 0.5 << "a";
    csv.endrow();
    csv << 0.10 << 1 << "b";
    csv.endrow();
    csv.flush();
  }
  const std::string content = slurp(path);
  EXPECT_EQ(content, "t,throttle,name\n0.05,0.5,a\n0.1,1,b\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, UnwritablepathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

TEST(CsvWriter, EmptyRow) {
  const std::string path = ::testing::TempDir() + "/dav_csv_empty.csv";
  {
    CsvWriter csv(path);
    csv.endrow();
  }
  EXPECT_EQ(slurp(path), "\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dav
