#include <gtest/gtest.h>

#include <cmath>

#include "agent/tensor.h"

namespace dav {
namespace {

GpuEngine clean_engine() {
  GpuEngine eng;
  eng.configure({}, 0);
  return eng;
}

CrashHangModel never_lethal() {
  CrashHangModel m;
  m.p_crash_data = m.p_hang_data = m.p_crash_mem = m.p_hang_mem = 0.0;
  m.p_crash_ctrl = m.p_hang_ctrl = 0.0;
  return m;
}

TEST(Tensor, ShapeAndAccess) {
  Tensor t(2, 3, 4);
  EXPECT_EQ(t.channels(), 2);
  EXPECT_EQ(t.height(), 3);
  EXPECT_EQ(t.width(), 4);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.byte_size(), 24u * sizeof(float));
  t.at(1, 2, 3) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2, 3), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
}

TEST(ImageToTensor, NormalizesTo01) {
  GpuEngine eng = clean_engine();
  Image img(4, 2);
  img.set(0, 0, {255, 0, 128});
  const Tensor t = image_to_tensor(eng, img);
  EXPECT_EQ(t.channels(), 3);
  EXPECT_EQ(t.height(), 2);
  EXPECT_EQ(t.width(), 4);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0, 0), 0.0f);
  EXPECT_NEAR(t.at(2, 0, 0), 128.0f / 255.0f, 1e-6);
  EXPECT_GT(eng.total_dyn_instructions(), t.size());  // exec + loads/stores
}

TEST(ImageRowsToTensor, CropsRows) {
  GpuEngine eng = clean_engine();
  Image img(4, 6);
  img.set(0, 3, {90, 90, 90});
  const Tensor t = image_rows_to_tensor(eng, img, 2, 5);
  EXPECT_EQ(t.height(), 3);
  EXPECT_NEAR(t.at(0, 1, 0), 90.0f / 255.0f, 1e-6);
}

TEST(Conv2dPlane, IdentityKernel) {
  GpuEngine eng = clean_engine();
  Tensor in(1, 4, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) in.at(0, y, x) = static_cast<float>(y * 4 + x);
  }
  std::vector<float> identity(9, 0.0f);
  identity[4] = 1.0f;  // center tap
  const Tensor out = conv2d_plane(eng, in, identity, 1);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_FLOAT_EQ(out.at(0, y, x), in.at(0, y, x));
    }
  }
}

TEST(Conv2dPlane, BoxFilterAverages) {
  GpuEngine eng = clean_engine();
  Tensor in(1, 3, 3);
  in.at(0, 1, 1) = 9.0f;
  const std::vector<float> box(9, 1.0f / 9.0f);
  const Tensor out = conv2d_plane(eng, in, box, 1);
  EXPECT_NEAR(out.at(0, 1, 1), 1.0f, 1e-6);
  EXPECT_NEAR(out.at(0, 0, 0), 9.0f / 9.0f, 1e-6);  // corner sees the spike
}

TEST(AvgPool, DownsamplesByFactor) {
  GpuEngine eng = clean_engine();
  Tensor in(1, 4, 4);
  for (auto& v : in.data()) v = 2.0f;
  in.at(0, 0, 0) = 10.0f;
  const Tensor out = avg_pool(eng, in, 2);
  EXPECT_EQ(out.height(), 2);
  EXPECT_EQ(out.width(), 2);
  EXPECT_NEAR(out.at(0, 0, 0), (10.0f + 2.0f * 3) / 4.0f, 1e-6);
  EXPECT_NEAR(out.at(0, 1, 1), 2.0f, 1e-6);
}

TEST(ReluInplace, ZeroesNegatives) {
  GpuEngine eng = clean_engine();
  Tensor t(1, 1, 3);
  t.at(0, 0, 0) = -1.0f;
  t.at(0, 0, 1) = 0.0f;
  t.at(0, 0, 2) = 2.0f;
  relu_inplace(eng, t);
  EXPECT_FLOAT_EQ(t.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0, 2), 2.0f);
}

TEST(RowSum, SumsOneRow) {
  GpuEngine eng = clean_engine();
  Tensor t(1, 2, 3);
  t.at(0, 1, 0) = 1.0f;
  t.at(0, 1, 1) = 2.0f;
  t.at(0, 1, 2) = 3.0f;
  EXPECT_FLOAT_EQ(row_sum(eng, t, 0, 1), 6.0f);
  EXPECT_FLOAT_EQ(row_sum(eng, t, 0, 0), 0.0f);
}

TEST(WindowSum, RespectsBounds) {
  GpuEngine eng = clean_engine();
  Tensor t(1, 3, 3);
  for (auto& v : t.data()) v = 1.0f;
  EXPECT_FLOAT_EQ(window_sum(eng, t, 0, 0, 2, 0, 2), 4.0f);
  EXPECT_FLOAT_EQ(window_sum(eng, t, 0, 1, 1, 0, 3), 0.0f);  // empty rows
}

TEST(ColCentroid, MassWeightedColumn) {
  GpuEngine eng = clean_engine();
  Tensor t(1, 1, 5);
  t.at(0, 0, 1) = 1.0f;
  t.at(0, 0, 3) = 3.0f;
  const CentroidResult r = col_centroid(eng, t, 0, 0, 1, 0, 5);
  EXPECT_FLOAT_EQ(r.mass, 4.0f);
  EXPECT_NEAR(r.centroid, (1.0f + 9.0f) / 4.0f, 1e-6);
}

TEST(ColCentroid, EmptyWindowInvalid) {
  GpuEngine eng = clean_engine();
  Tensor t(1, 2, 2);
  const CentroidResult r = col_centroid(eng, t, 0, 0, 2, 0, 2);
  EXPECT_FLOAT_EQ(r.centroid, -1.0f);
}

TEST(FullyConnected, MatVecWithBiasAndRelu) {
  GpuEngine eng = clean_engine();
  // out0 = relu(1*1 + 2*2 + 1) = 6; out1 = relu(-10) = 0.
  const auto out = fully_connected(eng, {1.0f, 2.0f},
                                   {1.0f, 2.0f, 0.0f, 0.0f}, {1.0f, -10.0f});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0], 6.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(FullyConnected, NoReluKeepsNegative) {
  GpuEngine eng = clean_engine();
  const auto out =
      fully_connected(eng, {1.0f}, {1.0f}, {-5.0f}, /*apply_relu=*/false);
  EXPECT_FLOAT_EQ(out[0], -4.0f);
}

TEST(FaultPropagation, PermanentFmaccCorruptsConvOutput) {
  GpuEngine clean = clean_engine();
  GpuEngine faulty;
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  plan.target_opcode = static_cast<int>(GpuOpcode::kFMacc);
  plan.bit = 22;
  faulty.configure(plan, 1, never_lethal());

  Tensor in(1, 4, 4);
  for (std::size_t i = 0; i < in.data().size(); ++i) {
    in.data()[i] = 0.1f * static_cast<float>(i % 7);
  }
  const std::vector<float> box(9, 1.0f / 9.0f);
  const Tensor a = conv2d_plane(clean, in, box, 1);
  const Tensor b = conv2d_plane(faulty, in, box, 1);
  EXPECT_NE(a.data(), b.data());
  EXPECT_GT(faulty.corruption_count(), 0u);
}

TEST(FaultPropagation, TransientHitsOneElementOnly) {
  GpuEngine clean = clean_engine();
  GpuEngine faulty;
  FaultPlan plan;
  plan.kind = FaultModelKind::kTransient;
  plan.domain = FaultDomain::kGpu;
  plan.bit = 30;
  // Target an index inside the FC exec stream (the first 24 dynamic
  // instructions are the bulk operand loads).
  plan.target_dyn_index = 30;
  faulty.configure(plan, 1, never_lethal());

  std::vector<float> in(8, 0.5f);
  std::vector<float> w(16, 0.25f);
  std::vector<float> bias(2, 0.0f);
  const auto a = fully_connected(clean, in, w, bias);
  const auto b = fully_connected(faulty, in, w, bias);
  int mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) mismatches += a[i] != b[i];
  EXPECT_EQ(mismatches, 1);
}

}  // namespace
}  // namespace dav
