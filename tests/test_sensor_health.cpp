// SensorHealthMonitor: per-channel plausibility checks and the
// Healthy -> Degraded -> Dropped -> rejoin ladder (DESIGN.md §14.2).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sensors/sensor_health.h"
#include "sensors/sensor_rig.h"

namespace dav {
namespace {

constexpr int kW = 64;
constexpr int kH = 48;

// A plausible "live" camera frame: mid-gray with per-step texture so no two
// consecutive sampled grids are byte-identical and no pixel is saturated.
Image live_image(int step) {
  Image img(kW, kH);
  for (int y = 0; y < kH; ++y) {
    for (int x = 0; x < kW; ++x) {
      const auto v = static_cast<std::uint8_t>(
          40 + (x * 7 + y * 13 + step * 29) % 120);
      img.set(x, y, Rgb{v, static_cast<std::uint8_t>(v + 3),
                        static_cast<std::uint8_t>(v + 6)});
    }
  }
  return img;
}

SensorFrame live_frame(int step, bool with_lidar = true) {
  SensorFrame f;
  f.step = step;
  f.time = step * 0.05;
  f.cameras = {live_image(step), live_image(step + 1000),
               live_image(step + 2000)};
  // Stationary vehicle with honest jitter-free GPS: zero-speed dead
  // reckoning matches a fixed position exactly.
  f.gps_imu.gps_x = 5.0f;
  f.gps_imu.gps_y = -3.0f;
  f.gps_imu.speed = 0.0f;
  f.gps_imu.yaw = 0.1f;
  if (with_lidar) f.lidar.assign(72, 30.0f);
  return f;
}

TEST(SensorHealthMonitor, CleanFramesStayHealthyOnEveryChannel) {
  SensorHealthMonitor mon;
  for (int step = 0; step < 60; ++step) mon.observe(live_frame(step));
  EXPECT_FALSE(mon.any_unhealthy());
  for (int c = 0; c < kSensorChannelCount; ++c) {
    EXPECT_EQ(mon.status(static_cast<SensorChannel>(c)),
              SensorStatus::kHealthy);
    EXPECT_DOUBLE_EQ(mon.weight(static_cast<SensorChannel>(c)), 1.0);
  }
  EXPECT_FALSE(mon.ranging_lost());
}

TEST(SensorHealthMonitor, DeadCameraWalksTheLadderAndRejoins) {
  SensorHealthConfig cfg;
  SensorHealthMonitor mon(cfg);
  for (int step = 0; step < 5; ++step) mon.observe(live_frame(step));

  int step = 5;
  const auto blackout_frame = [&](int s) {
    SensorFrame f = live_frame(s);
    f.cameras[1] = Image(kW, kH);  // all-zero: dead sensor
    return f;
  };
  for (int i = 0; i < cfg.degrade_after; ++i) mon.observe(blackout_frame(step++));
  EXPECT_EQ(mon.status(SensorChannel::kCamCenter), SensorStatus::kDegraded);
  EXPECT_DOUBLE_EQ(mon.weight(SensorChannel::kCamCenter), cfg.degraded_weight);
  EXPECT_TRUE(mon.any_unhealthy());

  for (int i = cfg.degrade_after; i < cfg.drop_after; ++i) {
    mon.observe(blackout_frame(step++));
  }
  EXPECT_EQ(mon.status(SensorChannel::kCamCenter), SensorStatus::kDropped);
  EXPECT_DOUBLE_EQ(mon.weight(SensorChannel::kCamCenter), 0.0);
  // LiDAR still up: forward ranging survives the camera loss.
  EXPECT_FALSE(mon.ranging_lost());

  // Side cameras and GPS were live the whole time.
  EXPECT_EQ(mon.status(SensorChannel::kCamLeft), SensorStatus::kHealthy);
  EXPECT_EQ(mon.status(SensorChannel::kCamRight), SensorStatus::kHealthy);
  EXPECT_EQ(mon.status(SensorChannel::kGps), SensorStatus::kHealthy);

  // Recovery: rejoin_after consecutive plausible frames re-admit the channel.
  for (int i = 0; i < cfg.rejoin_after - 1; ++i) mon.observe(live_frame(step++));
  EXPECT_EQ(mon.status(SensorChannel::kCamCenter), SensorStatus::kDropped);
  mon.observe(live_frame(step++));
  EXPECT_EQ(mon.status(SensorChannel::kCamCenter), SensorStatus::kHealthy);
  EXPECT_FALSE(mon.any_unhealthy());
}

TEST(SensorHealthMonitor, FrozenCameraIsImplausible) {
  SensorHealthConfig cfg;
  SensorHealthMonitor mon(cfg);
  SensorFrame f = live_frame(0);
  mon.observe(f);
  // Re-present the identical frame: photometric noise makes a byte-identical
  // sample impossible on a live sensor.
  for (int i = 0; i < cfg.drop_after; ++i) {
    SensorFrame g = live_frame(i + 1);
    g.cameras[2] = f.cameras[2];
    mon.observe(g);
  }
  EXPECT_EQ(mon.status(SensorChannel::kCamRight), SensorStatus::kDropped);
  EXPECT_EQ(mon.status(SensorChannel::kCamCenter), SensorStatus::kHealthy);
}

TEST(SensorHealthMonitor, GpsJumpAndNullFixAreImplausible) {
  SensorHealthConfig cfg;
  {
    SensorHealthMonitor mon(cfg);
    for (int step = 0; step < 5; ++step) mon.observe(live_frame(step));
    // A multipath-style fix bouncing 10 m every 50 ms tick: each delta is a
    // fresh jump, so the bad streak accumulates to a drop.
    for (int i = 0; i < cfg.drop_after; ++i) {
      SensorFrame g = live_frame(5 + i);
      g.gps_imu.gps_x += 10.0f * static_cast<float>(i + 1);
      mon.observe(g);
    }
    EXPECT_EQ(mon.status(SensorChannel::kGps), SensorStatus::kDropped);
  }
  {
    SensorHealthMonitor mon(cfg);
    for (int step = 0; step < 5; ++step) mon.observe(live_frame(step));
    for (int i = 0; i < cfg.degrade_after; ++i) {
      SensorFrame f = live_frame(5 + i);
      f.gps_imu = GpsImuSample{};  // all-zero null sample: lost fix
      mon.observe(f);
    }
    EXPECT_EQ(mon.status(SensorChannel::kGps), SensorStatus::kDegraded);
  }
}

TEST(SensorHealthMonitor, LidarDropoutDetectedAndRangingLostNeedsBoth) {
  SensorHealthConfig cfg;
  SensorHealthMonitor mon(cfg);
  for (int step = 0; step < 5; ++step) mon.observe(live_frame(step));

  int step = 5;
  const auto bad_frame = [&](int s) {
    SensorFrame f = live_frame(s);
    f.cameras[1] = Image(kW, kH);        // center camera dead
    std::fill(f.lidar.begin(), f.lidar.begin() + 36, 0.0f);  // 50% invalid
    return f;
  };
  for (int i = 0; i < cfg.drop_after; ++i) mon.observe(bad_frame(step++));
  EXPECT_EQ(mon.status(SensorChannel::kLidar), SensorStatus::kDropped);
  EXPECT_EQ(mon.status(SensorChannel::kCamCenter), SensorStatus::kDropped);
  // Camera AND LiDAR gone: nothing bounds obstacle distance any more.
  EXPECT_TRUE(mon.ranging_lost());
}

TEST(SensorHealthMonitor, LidarAbsenceIsNotAFaultButForfeitsCoverage) {
  SensorHealthMonitor mon;
  for (int step = 0; step < 10; ++step) {
    mon.observe(live_frame(step, /*with_lidar=*/false));
  }
  EXPECT_EQ(mon.status(SensorChannel::kLidar), SensorStatus::kHealthy);
  EXPECT_FALSE(mon.ranging_lost());

  // Without LiDAR, losing the center camera alone loses ranging.
  SensorHealthConfig cfg;
  int step = 10;
  for (int i = 0; i < cfg.drop_after; ++i) {
    SensorFrame f = live_frame(step++, /*with_lidar=*/false);
    f.cameras[1] = Image(kW, kH);
    mon.observe(f);
  }
  EXPECT_TRUE(mon.ranging_lost());
}

TEST(SensorHealthMonitor, SnapshotRestoreRoundTripsLadderState) {
  SensorHealthConfig cfg;
  SensorHealthMonitor mon(cfg);
  for (int step = 0; step < 5; ++step) mon.observe(live_frame(step));
  for (int i = 0; i < cfg.degrade_after; ++i) {
    SensorFrame f = live_frame(5 + i);
    f.cameras[0] = Image(kW, kH);
    mon.observe(f);
  }
  ASSERT_EQ(mon.status(SensorChannel::kCamLeft), SensorStatus::kDegraded);

  const SensorHealthSnapshot snap = mon.snapshot();
  SensorHealthMonitor fresh;
  fresh.restore(snap);
  EXPECT_EQ(fresh.status(SensorChannel::kCamLeft), SensorStatus::kDegraded);
  EXPECT_EQ(fresh.snapshot().bad_streak, snap.bad_streak);
  EXPECT_EQ(fresh.snapshot().good_streak, snap.good_streak);
  // Restored monitors re-prime their transient checks: the next live frame
  // must not false-positive (frozen/jump detectors start blind).
  fresh.observe(live_frame(100));
  EXPECT_EQ(fresh.status(SensorChannel::kGps), SensorStatus::kHealthy);
}

}  // namespace
}  // namespace dav
