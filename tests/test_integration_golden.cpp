// Integration: golden (fault-free) runs of every scenario in every agent
// mode must be safe — no collision, no traffic-rule violation (paper §V-B:
// "DiverseAV did not pose any negative consequence on safety in any of the
// evaluated driving scenarios").
#include <gtest/gtest.h>

#include "campaign/driver.h"

namespace dav {
namespace {

struct Case {
  ScenarioId scenario;
  AgentMode mode;
};

class GoldenRunTest : public ::testing::TestWithParam<Case> {};

TEST_P(GoldenRunTest, SafeAndClean) {
  const Case c = GetParam();
  RunConfig cfg;
  cfg.scenario = c.scenario;
  cfg.mode = c.mode;
  cfg.run_seed = 1234;
  cfg.scenario_opts.long_route_duration_sec = 45.0;
  const RunResult r = run_experiment(cfg);

  EXPECT_FALSE(r.collision) << to_string(c.scenario) << " in "
                            << to_string(c.mode);
  EXPECT_FALSE(r.flags.red_light_violation);
  EXPECT_FALSE(r.flags.off_road);
  EXPECT_FALSE(r.flags.speeding);
  EXPECT_FALSE(r.due);
  EXPECT_GT(r.steps, 100);
  EXPECT_GT(r.observations.size(), 50u);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (ScenarioId s :
       {ScenarioId::kLeadSlowdown, ScenarioId::kGhostCutIn,
        ScenarioId::kFrontAccident, ScenarioId::kLongRoute02,
        ScenarioId::kLongRoute15, ScenarioId::kLongRoute42}) {
    for (AgentMode m : {AgentMode::kSingle, AgentMode::kRoundRobin,
                        AgentMode::kDuplicate}) {
      cases.push_back({s, m});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenariosAllModes, GoldenRunTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& pinfo) {
      std::string name = to_string(pinfo.param.scenario) + "_" +
                         to_string(pinfo.param.mode);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dav
