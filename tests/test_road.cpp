#include <gtest/gtest.h>

#include <cmath>

#include "sim/road.h"

namespace dav {
namespace {

TEST(TrafficLight, PhaseCycle) {
  TrafficLight light{/*s=*/0.0, /*green=*/10.0, /*yellow=*/2.0, /*red=*/8.0,
                     /*phase=*/0.0};
  EXPECT_EQ(light.phase_at(0.0), TrafficLight::Phase::kGreen);
  EXPECT_EQ(light.phase_at(9.99), TrafficLight::Phase::kGreen);
  EXPECT_EQ(light.phase_at(10.5), TrafficLight::Phase::kYellow);
  EXPECT_EQ(light.phase_at(13.0), TrafficLight::Phase::kRed);
  EXPECT_EQ(light.phase_at(20.0), TrafficLight::Phase::kGreen);  // wrapped
  EXPECT_DOUBLE_EQ(light.cycle_length(), 20.0);
}

TEST(TrafficLight, PhaseOffsetAndNegativeTime) {
  TrafficLight light{0.0, 10.0, 2.0, 8.0, /*phase=*/11.0};
  EXPECT_EQ(light.phase_at(0.0), TrafficLight::Phase::kYellow);
  EXPECT_NO_THROW(light.phase_at(-5.0));
}

RoadMap straight_map() {
  return RoadMap(Polyline({{0, 0}, {200, 0}}), 3.5, 1, 0);
}

TEST(RoadMap, LanePointOffsets) {
  const RoadMap map = straight_map();
  EXPECT_EQ(map.lane_point(50.0, 0), Vec2(50, 0));
  const Vec2 left = map.lane_point(50.0, 1);
  EXPECT_NEAR(left.y, 3.5, 1e-12);
  const Vec2 right = map.lane_point(50.0, -1);
  EXPECT_NEAR(right.y, -3.5, 1e-12);
}

TEST(RoadMap, NextLightAfter) {
  RoadMap map = straight_map();
  map.add_traffic_light({80.0});
  map.add_traffic_light({30.0});
  auto l = map.next_light_after(10.0);
  ASSERT_TRUE(l.has_value());
  EXPECT_DOUBLE_EQ(l->s, 30.0);
  l = map.next_light_after(31.0);
  ASSERT_TRUE(l.has_value());
  EXPECT_DOUBLE_EQ(l->s, 80.0);
  EXPECT_FALSE(map.next_light_after(90.0).has_value());
}

TEST(RoadMap, SpeedLimits) {
  RoadMap map = straight_map();
  map.add_speed_limit({0.0, 100.0, 9.0});
  map.add_speed_limit({100.0, 200.0, 17.0});
  EXPECT_DOUBLE_EQ(map.speed_limit_at(50.0), 9.0);
  EXPECT_DOUBLE_EQ(map.speed_limit_at(150.0), 17.0);
  EXPECT_DOUBLE_EQ(map.speed_limit_at(250.0, 12.0), 12.0);  // fallback
}

TEST(RoadMap, OnRoadCorridor) {
  const RoadMap map = straight_map();  // 1 left lane, 0 right lanes
  EXPECT_TRUE(map.on_road({50.0, 0.0}));
  EXPECT_TRUE(map.on_road({50.0, 4.0}));    // in left lane
  EXPECT_FALSE(map.on_road({50.0, 6.5}));   // beyond left edge + shoulder
  EXPECT_TRUE(map.on_road({50.0, -2.0}));   // within right shoulder
  EXPECT_FALSE(map.on_road({50.0, -3.0}));
}

TEST(RouteBuilder, StraightLength) {
  const Polyline r = RouteBuilder().straight(100.0).build();
  EXPECT_NEAR(r.length(), 100.0, 1e-9);
  EXPECT_NEAR(r.heading_at(50.0), 0.0, 1e-12);
}

TEST(RouteBuilder, TurnChangesHeadingAndArcLength) {
  const Polyline r =
      RouteBuilder().straight(20.0).turn(M_PI / 2, 10.0).straight(20.0).build();
  // Quarter circle of radius 10 has length ~15.7.
  EXPECT_NEAR(r.length(), 20.0 + M_PI / 2 * 10.0 + 20.0, 0.3);
  EXPECT_NEAR(r.heading_at(r.length() - 1.0), M_PI / 2, 0.05);
}

TEST(RouteBuilder, RightTurnNegativeAngle) {
  const Polyline r = RouteBuilder().straight(10.0).turn(-M_PI / 2, 10.0).build();
  // The end tangent of a chord polyline is biased half a step angle.
  EXPECT_NEAR(r.heading_at(r.length() - 0.5), -M_PI / 2, M_PI / 16);
  // Right turn curves to negative y.
  EXPECT_LT(r.point_at(r.length()).y, 0.0);
}

TEST(RouteBuilder, CurvatureSignMatchesTurn) {
  const Polyline r =
      RouteBuilder().straight(40.0).turn(M_PI / 2, 20.0).straight(40.0).build();
  EXPECT_GT(r.curvature_at(40.0 + 15.0), 0.02);   // inside the left turn
  EXPECT_NEAR(r.curvature_at(10.0), 0.0, 1e-6);   // straight before
}

class RouteBuilderProperty : public ::testing::TestWithParam<double> {};

TEST_P(RouteBuilderProperty, ArcRadiusApproximation) {
  const double radius = GetParam();
  const Polyline r = RouteBuilder().turn(M_PI / 2, radius).build();
  // Mid-arc curvature ~ 1/radius.
  EXPECT_NEAR(r.curvature_at(r.length() / 2), 1.0 / radius, 0.25 / radius);
}

INSTANTIATE_TEST_SUITE_P(Radii, RouteBuilderProperty,
                         ::testing::Values(10.0, 18.0, 40.0, 120.0, 300.0));

}  // namespace
}  // namespace dav
