#include <gtest/gtest.h>

#include "util/stats.h"

namespace dav {
namespace {

TEST(Mean, BasicsAndEmpty) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stddev, SampleFormula) {
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(MinMax, Basics) {
  EXPECT_DOUBLE_EQ(min_of({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(max_of({3, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(min_of({}), 0.0);
}

TEST(Percentile, InterpolatesAndClamps) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(BoxStats, FiveNumbers) {
  const BoxStats b = box_stats({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.median, 5.0);
  EXPECT_DOUBLE_EQ(b.max, 9.0);
  EXPECT_DOUBLE_EQ(b.q1, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 7.0);
  EXPECT_EQ(b.n, 9u);
}

TEST(RollingWindow, MeanEvictsOldest) {
  RollingWindow w(3);
  w.push(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_FALSE(w.full());
  w.push(6.0);
  w.push(9.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 6.0);
  w.push(12.0);  // evicts 3
  EXPECT_DOUBLE_EQ(w.mean(), 9.0);
  EXPECT_EQ(w.size(), 3u);
}

TEST(RollingWindow, MaxAndClear) {
  RollingWindow w(2);
  w.push(5.0);
  w.push(1.0);
  EXPECT_DOUBLE_EQ(w.max(), 5.0);
  w.push(2.0);  // evicts 5
  EXPECT_DOUBLE_EQ(w.max(), 2.0);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(RollingWindow, ZeroCapacityThrows) {
  EXPECT_THROW(RollingWindow(0), std::invalid_argument);
}

class RollingWindowProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RollingWindowProperty, MeanMatchesNaiveComputation) {
  const std::size_t cap = GetParam();
  RollingWindow w(cap);
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) {
    const double x = (i * 37 % 11) - 5.0;
    xs.push_back(x);
    w.push(x);
    const std::size_t n = std::min<std::size_t>(xs.size(), cap);
    double s = 0.0;
    for (std::size_t j = xs.size() - n; j < xs.size(); ++j) s += xs[j];
    EXPECT_NEAR(w.mean(), s / static_cast<double>(n), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, RollingWindowProperty,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u, 40u));

TEST(CountHistogram, AddAndPercentile) {
  CountHistogram h(10);
  h.add(2, 50);
  h.add(8, 50);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.percentile(25), 2u);
  EXPECT_EQ(h.percentile(75), 8u);
  EXPECT_EQ(h.count(2), 50u);
}

TEST(CountHistogram, OutOfRangeThrows) {
  CountHistogram h(4);
  EXPECT_THROW(h.add(4), std::out_of_range);
  EXPECT_THROW(CountHistogram(0), std::invalid_argument);
}

TEST(Confusion, PrecisionRecallF1) {
  Confusion c;
  for (int i = 0; i < 8; ++i) c.add(true, true);    // tp
  for (int i = 0; i < 2; ++i) c.add(true, false);   // fp
  for (int i = 0; i < 4; ++i) c.add(false, true);   // fn
  for (int i = 0; i < 6; ++i) c.add(false, false);  // tn
  EXPECT_DOUBLE_EQ(c.precision(), 0.8);
  EXPECT_NEAR(c.recall(), 8.0 / 12.0, 1e-12);
  EXPECT_NEAR(c.f1(), 2 * 0.8 * (2.0 / 3.0) / (0.8 + 2.0 / 3.0), 1e-12);
  EXPECT_EQ(c.total(), 20u);
}

TEST(Confusion, EmptyIsZero) {
  Confusion c;
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(Accumulator, TracksMoments) {
  Accumulator a;
  a.add(1.0);
  a.add(5.0);
  a.add(3.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 9.0);
}

}  // namespace
}  // namespace dav
