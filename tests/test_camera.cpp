#include <gtest/gtest.h>

#include <cmath>

#include "sensors/camera.h"
#include "sim/scenario.h"

namespace dav {
namespace {

World lsd_world() { return World(make_scenario(ScenarioId::kLeadSlowdown)); }

TEST(CameraModel, FocalFromFov) {
  CameraModel m;
  m.width = 96;
  m.fov_deg = 90.0;
  EXPECT_NEAR(m.focal_px(), 48.0, 1e-9);
  m.fov_deg = 60.0;
  EXPECT_GT(m.focal_px(), 48.0);  // narrower fov -> longer focal
}

TEST(FrontCameraRig, ThreeCamerasLeftCenterRight) {
  const auto rig = front_camera_rig(96, 72, 2.0);
  ASSERT_EQ(rig.size(), 3u);
  EXPECT_GT(rig[0].yaw_offset, 0.0);   // left camera yaws left (+)
  EXPECT_DOUBLE_EQ(rig[1].yaw_offset, 0.0);
  EXPECT_LT(rig[2].yaw_offset, 0.0);
  for (const auto& m : rig) {
    EXPECT_EQ(m.width, 96);
    EXPECT_EQ(m.height, 72);
  }
}

TEST(CameraRenderer, ProducesCorrectlySizedImage) {
  World world = lsd_world();
  CameraRenderer renderer(front_camera_rig()[1]);
  Rng noise(1);
  const Image img = renderer.render(world, noise);
  EXPECT_EQ(img.width(), 96);
  EXPECT_EQ(img.height(), 72);
  EXPECT_EQ(img.byte_size(), 96u * 72u * 3u);
}

TEST(CameraRenderer, SkyAboveHorizonRoadBelow) {
  World world = lsd_world();
  CameraModel m = front_camera_rig()[1];
  m.noise_sigma = 0.0;
  CameraRenderer renderer(m);
  Rng noise(1);
  const Image img = renderer.render(world, noise);
  const Rgb sky = img.get(48, 5);
  EXPECT_GT(sky.b, sky.r);  // blue-ish sky
  const Rgb road = img.get(48, 65);
  // Road is achromatic gray.
  EXPECT_NEAR(road.r, road.g, 6);
  EXPECT_NEAR(road.g, road.b, 6);
}

TEST(CameraRenderer, LeadVehicleVisibleInCenter) {
  World world = lsd_world();
  CameraModel m = front_camera_rig()[1];
  m.noise_sigma = 0.0;
  CameraRenderer renderer(m);
  Rng noise(1);
  const Image img = renderer.render(world, noise);
  const BBox2 box = renderer.project_npc(world, world.npcs()[0]);
  ASSERT_TRUE(box.valid());
  // The projected box center pixel should be blue-ish (the lead is blue).
  const int cx = static_cast<int>(box.cx());
  const int cy = static_cast<int>(box.cy());
  const Rgb c = img.get(cx, cy);
  EXPECT_GT(c.b, c.r + 20);
}

TEST(CameraRenderer, NoiseChangesPixelsDeterministically) {
  World world = lsd_world();
  CameraRenderer renderer(front_camera_rig()[1]);
  Rng n1(42), n2(42), n3(43);
  const Image a = renderer.render(world, n1);
  const Image b = renderer.render(world, n2);
  const Image c = renderer.render(world, n3);
  EXPECT_EQ(a.bytes(), b.bytes());   // same seed -> identical
  EXPECT_NE(a.bytes(), c.bytes());   // different seed -> different
}

TEST(ProjectNpc, SizeShrinksWithDistance) {
  World world = lsd_world();
  CameraRenderer renderer(front_camera_rig()[1]);
  const BBox2 near_box = renderer.project_npc(world, world.npcs()[0]);
  // Move the world forward a while: lead maintains distance; instead create a
  // second scenario with a farther lead.
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  IdmParams idm;
  sc.npcs.emplace_back(7, sc.ego_start_s + 60.0, 0.0, 10.0, idm);
  World world2(std::move(sc));
  const BBox2 far_box = renderer.project_npc(world2, world2.npcs()[1]);
  ASSERT_TRUE(near_box.valid());
  ASSERT_TRUE(far_box.valid());
  EXPECT_GT(near_box.x_max - near_box.x_min, far_box.x_max - far_box.x_min);
  // Farther object's bottom edge is closer to the horizon.
  EXPECT_LT(far_box.y_max, near_box.y_max);
}

TEST(ProjectNpc, BehindCameraInvalid) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  IdmParams idm;
  sc.npcs.emplace_back(9, sc.ego_start_s - 30.0, 0.0, 10.0, idm);
  World world(std::move(sc));
  CameraRenderer renderer(front_camera_rig()[1]);
  EXPECT_FALSE(renderer.project_npc(world, world.npcs()[1]).valid());
}

TEST(ProjectNpc, GroundDepthMapsToRow) {
  // v_bottom - cy == f * mount_height / depth within a pixel.
  World world = lsd_world();
  const CameraModel m = front_camera_rig()[1];
  CameraRenderer renderer(m);
  const BBox2 box = renderer.project_npc(world, world.npcs()[0]);
  ASSERT_TRUE(box.valid());
  const auto& npc = world.npcs()[0];
  const double depth =
      npc.s() - world.ego_route_s() - npc.spec().length * 0.5;
  const double expected_row = m.height / 2.0 + m.focal_px() * m.mount_height / depth;
  EXPECT_NEAR(box.y_max, expected_row, 1.5);
}

namespace {
bool any_red(const Image& img, int y_begin, int y_end) {
  for (int y = y_begin; y < y_end; ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const Rgb c = img.get(x, y);
      if (c.r > c.g + 60 && c.r > c.b + 60) return true;
    }
  }
  return false;
}
}  // namespace

TEST(CameraRenderer, RedLightHeadVisibleAtRange) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  sc.map.add_traffic_light({sc.ego_start_s + 30.0, 0.0, 0.0, 1000.0, 0.0});
  World world(std::move(sc));
  CameraModel m = front_camera_rig()[1];
  m.noise_sigma = 0.0;
  CameraRenderer renderer(m);
  Rng noise(1);
  const Image img = renderer.render(world, noise);
  // The head box (mounted high) renders above the horizon at 30 m.
  EXPECT_TRUE(any_red(img, 0, img.height() / 2));
}

TEST(CameraRenderer, RedStopLineVisibleCloseUp) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  sc.map.add_traffic_light({sc.ego_start_s + 9.0, 0.0, 0.0, 1000.0, 0.0});
  World world(std::move(sc));
  CameraModel m = front_camera_rig()[1];
  m.noise_sigma = 0.0;
  CameraRenderer renderer(m);
  Rng noise(1);
  const Image img = renderer.render(world, noise);
  // The painted stop line on the ground is a close-range cue.
  EXPECT_TRUE(any_red(img, img.height() / 2, img.height()));
}

TEST(CameraRenderer, GreenLightShowsNoRed) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  sc.map.add_traffic_light({sc.ego_start_s + 30.0, 1000.0, 1.0, 1.0, 0.0});
  World world(std::move(sc));
  CameraModel m = front_camera_rig()[1];
  m.noise_sigma = 0.0;
  CameraRenderer renderer(m);
  Rng noise(1);
  const Image img = renderer.render(world, noise);
  EXPECT_FALSE(any_red(img, 0, img.height()));
}

TEST(CameraRenderer, TextureStrengthChangesGroundPixels) {
  World world = lsd_world();
  CameraModel m = front_camera_rig()[1];
  m.noise_sigma = 0.0;
  CameraRenderer plain(m);
  CameraRenderer textured(m);
  textured.set_texture_strength(1.0);
  Rng n1(4), n2(4);
  const Image a = plain.render(world, n1);
  const Image b = textured.render(world, n2);
  EXPECT_NE(a.bytes(), b.bytes());
}

TEST(Image, GetSetRoundTrip) {
  Image img(4, 3);
  img.set(2, 1, {10, 20, 30});
  const Rgb c = img.get(2, 1);
  EXPECT_EQ(c.r, 10);
  EXPECT_EQ(c.g, 20);
  EXPECT_EQ(c.b, 30);
  EXPECT_FALSE(img.empty());
  EXPECT_TRUE(Image().empty());
}

}  // namespace
}  // namespace dav
