// End-to-end tests for tools/davtrace: the summarize error paths must name
// the offending file and say what is wrong with it, and `compare` — the CI
// perf gate — must pass self-vs-self at zero tolerance, flag regressions
// with exit 2, and respect global and per-stage tolerances. Driven through
// the real binary (DAVTRACE_BIN, injected by CMake).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef DAVTRACE_BIN
#error "DAVTRACE_BIN must point at the davtrace executable"
#endif

namespace {

namespace fs = std::filesystem;

struct CliResult {
  int exit_code = -1;
  std::string output;
};

class DavtraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("davtrace_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  fs::path write_fixture(const std::string& name, const std::string& body) {
    const fs::path p = dir_ / name;
    std::ofstream(p) << body;
    return p;
  }

  CliResult run(const std::string& args) {
    const fs::path out = dir_ / "cli_output.txt";
    const std::string cmd = std::string(DAVTRACE_BIN) + " " + args + " > " +
                            out.string() + " 2>&1";
    const int raw = std::system(cmd.c_str());
    CliResult r;
    r.exit_code = WEXITSTATUS(raw);
    std::ifstream in(out);
    std::stringstream ss;
    ss << in.rdbuf();
    r.output = ss.str();
    return r;
  }

  fs::path dir_;
};

/// A campaign-style fleet trace: no span events, percentiles carried in the
/// "hist.<stage>" otherData rows (count,p50_ns,p95_ns,p99_ns).
std::string hist_trace(const std::string& control_row,
                       const std::string& planner_row) {
  return std::string("{\"traceEvents\":[],\"otherData\":{") +
         "\"tool\":\"dav-campaign-telemetry\"," +
         "\"hist.control\":\"" + control_row + "\"," +
         "\"hist.planner\":\"" + planner_row + "\"}}";
}

/// A per-run style trace carrying complete span ('X') events.
std::string span_trace(double control_dur_us) {
  std::ostringstream ss;
  ss << "{\"traceEvents\":[";
  for (int i = 0; i < 4; ++i) {
    if (i > 0) ss << ",";
    ss << "{\"name\":\"control\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":"
       << (i * 100) << ",\"dur\":" << control_dur_us
       << ",\"pid\":1,\"tid\":1}";
  }
  ss << "],\"otherData\":{\"tool\":\"dav-trace\"}}";
  return ss.str();
}

// ---- summarize error paths -------------------------------------------------

TEST_F(DavtraceTest, EmptyFileNamesPathAndSaysEmpty) {
  const auto p = write_fixture("empty.trace.json", "");
  const auto r = run("summarize " + p.string());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(p.string()), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("empty (0 bytes)"), std::string::npos) << r.output;
}

TEST_F(DavtraceTest, TruncatedJsonNamesPathAndSaysTruncated) {
  const auto p = write_fixture("trunc.trace.json",
                               "{\"traceEvents\":[{\"name\":\"cont");
  const auto r = run("summarize " + p.string());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(p.string()), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("truncated or not Chrome trace-event JSON"),
            std::string::npos)
      << r.output;
}

TEST_F(DavtraceTest, NonTraceJsonNamesPathAndSaysNotATrace) {
  const auto p = write_fixture("other.json", "{\"hello\":\"world\"}");
  const auto r = run("summarize " + p.string());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(p.string()), std::string::npos) << r.output;
  // Valid JSON that is not a trace must be called out as such, not reported
  // as a parse failure.
  EXPECT_NE(r.output.find("not"), std::string::npos) << r.output;
}

TEST_F(DavtraceTest, ValidTraceStillSummarizes) {
  const auto p = write_fixture("ok.trace.json", span_trace(50.0));
  const auto r = run("summarize " + p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("control"), std::string::npos) << r.output;
}

// ---- compare: the CI perf gate ---------------------------------------------

TEST_F(DavtraceTest, CompareSelfVsSelfPassesAtZeroTolerance) {
  const auto p =
      write_fixture("base.trace.json",
                    hist_trace("100,1024,2048,4096", "100,512,1024,2048"));
  const auto r = run("compare " + p.string() + " " + p.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;
}

TEST_F(DavtraceTest, CompareFlagsRegressionWithExitTwo) {
  const auto base =
      write_fixture("base.trace.json",
                    hist_trace("100,1024,2048,4096", "100,512,1024,2048"));
  const auto cand =
      write_fixture("cand.trace.json",
                    hist_trace("100,1024,4096,8192", "100,512,1024,2048"));
  const auto r = run("compare " + base.string() + " " + cand.string());
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("REGRESSION"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("control"), std::string::npos) << r.output;
}

TEST_F(DavtraceTest, CompareGlobalToleranceAbsorbsRegression) {
  const auto base =
      write_fixture("base.trace.json",
                    hist_trace("100,1024,2048,4096", "100,512,1024,2048"));
  const auto cand =
      write_fixture("cand.trace.json",
                    hist_trace("100,1024,4096,8192", "100,512,1024,2048"));
  const auto r = run("compare " + base.string() + " " + cand.string() +
                     " --tolerance=150");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(DavtraceTest, ComparePerStageToleranceOverridesGlobal) {
  const auto base =
      write_fixture("base.trace.json",
                    hist_trace("100,1024,2048,4096", "100,512,1024,2048"));
  const auto cand =
      write_fixture("cand.trace.json",
                    hist_trace("100,1024,4096,8192", "100,512,2048,4096"));
  // control is excused, planner (also +100%) still gates at the global 0.
  const auto r = run("compare " + base.string() + " " + cand.string() +
                     " --stage=control=150");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("planner"), std::string::npos) << r.output;
}

TEST_F(DavtraceTest, CompareUsesSpanEventsWhenPresent) {
  const auto base = write_fixture("base.trace.json", span_trace(50.0));
  const auto cand = write_fixture("cand.trace.json", span_trace(80.0));
  const auto r = run("compare " + base.string() + " " + cand.string());
  EXPECT_EQ(r.exit_code, 2) << r.output;
  const auto ok = run("compare " + base.string() + " " + cand.string() +
                      " --tolerance=75");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
}

TEST_F(DavtraceTest, CompareRejectsBadArguments) {
  const auto p =
      write_fixture("base.trace.json",
                    hist_trace("100,1024,2048,4096", "100,512,1024,2048"));
  // One input.
  EXPECT_EQ(run("compare " + p.string()).exit_code, 1);
  // Malformed tolerances.
  EXPECT_EQ(run("compare " + p.string() + " " + p.string() +
                " --tolerance=fast")
                .exit_code,
            1);
  EXPECT_EQ(run("compare " + p.string() + " " + p.string() +
                " --tolerance=-5")
                .exit_code,
            1);
  EXPECT_EQ(
      run("compare " + p.string() + " " + p.string() + " --stage=control")
          .exit_code,
      1);
}

}  // namespace
