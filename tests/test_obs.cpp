// Flight-recorder tests (src/obs/): ring-buffer semantics, Chrome trace
// JSON round-trip, the tick-indexed CSV, and the determinism guard — a
// traced run's RunResult must be bit-identical to the untraced run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/driver.h"
#include "campaign/serialize.h"
#include "obs/export.h"
#include "util/trace.h"

namespace dav {
namespace {

namespace fs = std::filesystem;

obs::TraceEvent make_counter(std::uint32_t tick, obs::Counter c, double value,
                             int track = -1) {
  obs::TraceEvent ev;
  ev.tick = tick;
  ev.id = static_cast<std::uint16_t>(c);
  ev.kind = obs::EventKind::kCounter;
  ev.track = static_cast<std::int8_t>(track);
  ev.value = value;
  return ev;
}

obs::TraceEvent make_instant(std::uint32_t tick, obs::Instant i,
                             double value = 0.0) {
  obs::TraceEvent ev;
  ev.tick = tick;
  ev.id = static_cast<std::uint16_t>(i);
  ev.kind = obs::EventKind::kInstant;
  ev.value = value;
  return ev;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class ScratchDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("obs_" + std::string(::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// ---- ring buffer ----

TEST(TraceRecorder, FillsToCapacityWithoutDrops) {
  obs::TraceRecorder rec(8);
  for (std::uint32_t t = 0; t < 8; ++t) {
    rec.record(make_counter(t, obs::Counter::kCvip, 1.0 * t));
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto evs = rec.drain();
  ASSERT_EQ(evs.size(), 8u);
  for (std::uint32_t t = 0; t < 8; ++t) EXPECT_EQ(evs[t].tick, t);
}

TEST(TraceRecorder, OverflowKeepsNewestAndCountsDrops) {
  obs::TraceRecorder rec(4);
  for (std::uint32_t t = 0; t < 10; ++t) {
    rec.record(make_counter(t, obs::Counter::kCvip, 1.0 * t));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  // drain() is oldest-surviving-first: ticks 6..9 remain, in order.
  const auto evs = rec.drain();
  ASSERT_EQ(evs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[i].tick, 6u + i) << i;
  }
}

// ---- stage histograms ----

obs::TraceEvent make_span(std::uint32_t tick, obs::Stage s,
                          std::uint64_t dur_ns) {
  obs::TraceEvent ev;
  ev.tick = tick;
  ev.id = static_cast<std::uint16_t>(s);
  ev.kind = obs::EventKind::kSpan;
  ev.dur_ns = dur_ns;
  return ev;
}

TEST(StageHistogram, PercentilesExactOnPowerOfTwoDurations) {
  // Bucket lower bounds are powers of two, so a synthetic workload made of
  // power-of-two durations reads back its percentiles exactly.
  obs::StageHistogram h;
  for (int i = 0; i < 50; ++i) h.add(1024);
  for (int i = 0; i < 45; ++i) h.add(4096);
  for (int i = 0; i < 5; ++i) h.add(65536);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile_ns(50.0), 1024u);
  EXPECT_EQ(h.percentile_ns(95.0), 4096u);
  EXPECT_EQ(h.percentile_ns(99.0), 65536u);
  EXPECT_EQ(h.percentile_ns(100.0), 65536u);
  EXPECT_EQ(h.percentile_ns(0.0), 1024u);  // nearest-rank clamps to rank 1
}

TEST(StageHistogram, EmptyAndZeroDurationsAreWellDefined) {
  obs::StageHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_ns(50.0), 0u);
  h.add(0);
  h.add(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.percentile_ns(99.0), 0u);  // bucket 0 holds exact zeros
  h.add(~std::uint64_t{0});              // never saturates into a wrong bucket
  EXPECT_EQ(h.percentile_ns(100.0), std::uint64_t{1} << 63);
}

TEST(StageHistogram, MergeSumsBucketwise) {
  obs::StageHistogram a, b;
  for (int i = 0; i < 10; ++i) a.add(256);
  for (int i = 0; i < 10; ++i) b.add(2048);
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_EQ(a.percentile_ns(50.0), 256u);
  EXPECT_EQ(a.percentile_ns(95.0), 2048u);
}

TEST(StageHistogramSet, RecorderHistogramsSurviveRingEviction) {
  // The ring drops old events under overflow; the histograms must keep
  // counting every span ever recorded anyway.
  obs::TraceRecorder rec(4);
  for (std::uint32_t t = 0; t < 100; ++t) {
    rec.record(make_span(t, obs::Stage::kControl, 512));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 96u);
  const obs::StageHistogram& h = rec.histograms().at(obs::Stage::kControl);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile_ns(50.0), 512u);
  EXPECT_EQ(rec.histograms().total_count(), 100u);
}

// ---- recorder installation + helpers ----

TEST(ScopedRecorder, HelpersRecordIntoInstalledRecorder) {
  ASSERT_EQ(obs::recorder(), nullptr);
  obs::TraceRecorder rec(64);
  {
    obs::ScopedRecorder scope(&rec);
    EXPECT_EQ(obs::recorder(), &rec);
    obs::set_tick(7);
    obs::counter(obs::Counter::kDivergence, 0.5, /*track=*/0);
    obs::instant(obs::Instant::kDetectorAlarm, 1.25);
    { const obs::SpanScope span(obs::Stage::kDetector); }
  }
  EXPECT_EQ(obs::recorder(), nullptr);  // restored on scope exit

  const auto evs = rec.drain();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].kind, obs::EventKind::kCounter);
  EXPECT_EQ(evs[0].tick, 7u);
  EXPECT_EQ(evs[0].track, 0);
  EXPECT_DOUBLE_EQ(evs[0].value, 0.5);
  EXPECT_EQ(evs[1].kind, obs::EventKind::kInstant);
  EXPECT_DOUBLE_EQ(evs[1].value, 1.25);
  EXPECT_EQ(evs[2].kind, obs::EventKind::kSpan);
  EXPECT_EQ(evs[2].id, static_cast<std::uint16_t>(obs::Stage::kDetector));
}

TEST(ScopedRecorder, HelpersAreNoOpsWithoutRecorder) {
  ASSERT_EQ(obs::recorder(), nullptr);
  obs::counter(obs::Counter::kDivergence, 1.0, 0);
  obs::instant(obs::Instant::kDue, 2.0);
  { const obs::SpanScope span(obs::Stage::kTick); }
  EXPECT_EQ(obs::recorder(), nullptr);
}

// ---- Chrome trace JSON round-trip ----

TEST(ChromeTraceJson, RoundTripsEventsAndMetadata) {
  std::vector<obs::TraceEvent> evs;
  obs::TraceEvent span;
  span.tick = 3;
  span.id = static_cast<std::uint16_t>(obs::Stage::kPerception);
  span.kind = obs::EventKind::kSpan;
  span.track = 1;
  span.dur_ns = 1500;
  evs.push_back(span);
  // 0.1 + 0.2 is the canonical double that breaks naive float printing;
  // %.17g must round-trip it exactly.
  evs.push_back(make_counter(4, obs::Counter::kDivergence, 0.1 + 0.2,
                             /*track=*/2));
  evs.push_back(make_instant(5, obs::Instant::kDue, 3.0));

  const auto chrome = obs::to_chrome_events(evs, /*dt=*/0.05, /*pid=*/7);
  ASSERT_EQ(chrome.size(), 3u);
  EXPECT_EQ(chrome[0].ph, 'X');
  EXPECT_EQ(chrome[0].name, "perception");
  EXPECT_DOUBLE_EQ(chrome[0].ts_us, 3 * 0.05 * 1e6);  // simulated time
  EXPECT_DOUBLE_EQ(chrome[0].dur_us, 1.5);            // 1500 ns
  EXPECT_EQ(chrome[1].ph, 'C');
  EXPECT_EQ(chrome[1].name, "divergence.steer");  // track 2 = steer channel
  EXPECT_EQ(chrome[2].ph, 'i');

  obs::ChromeTrace trace;
  trace.events = chrome;
  trace.other_data.emplace_back("tool", "dav-flight-recorder");
  trace.other_data.emplace_back("note", "quotes \" and \\ backslash");

  const std::string json = obs::chrome_trace_json(trace);
  const obs::ChromeTrace back = obs::parse_chrome_trace(json);

  ASSERT_EQ(back.events.size(), trace.events.size());
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const obs::ChromeEvent& a = trace.events[i];
    const obs::ChromeEvent& b = back.events[i];
    EXPECT_EQ(a.name, b.name) << i;
    EXPECT_EQ(a.ph, b.ph) << i;
    EXPECT_EQ(a.pid, b.pid) << i;
    EXPECT_EQ(a.tid, b.tid) << i;
    EXPECT_EQ(a.tick, b.tick) << i;
    // Bit-exact double round-trip through the %.17g text form.
    EXPECT_EQ(a.ts_us, b.ts_us) << i;
    EXPECT_EQ(a.dur_us, b.dur_us) << i;
    EXPECT_EQ(a.value, b.value) << i;
  }
  ASSERT_EQ(back.other_data.size(), trace.other_data.size());
  EXPECT_EQ(back.other_data[1].second, "quotes \" and \\ backslash");
}

TEST(ChromeTraceJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(obs::parse_chrome_trace("not json"), std::runtime_error);
  EXPECT_THROW(obs::parse_chrome_trace("{\"traceEvents\": ["),
               std::runtime_error);
}

// ---- tick-indexed CSV ----

TEST(RunCsv, CarriesCountersForwardAndLatchesAlarm) {
  std::vector<obs::TraceEvent> evs;
  evs.push_back(make_counter(0, obs::Counter::kDivergence, 0.5, 0));
  evs.push_back(make_counter(0, obs::Counter::kThreshold, 2.0, 0));
  evs.push_back(make_instant(5, obs::Instant::kDetectorAlarm, 0.25));
  evs.push_back(make_counter(6, obs::Counter::kDivergence, 0.75, 0));
  evs.push_back(make_instant(8, obs::Instant::kRecoveryRejoin, 0.4));

  const std::string csv =
      obs::run_csv(obs::to_chrome_events(evs, /*dt=*/0.05, /*pid=*/1));
  std::istringstream in(csv);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  ASSERT_EQ(lines.size(), 5u);  // header + ticks {0, 5, 6, 8}
  EXPECT_EQ(lines[0],
            "tick,time_sec,div_throttle,div_brake,div_steer,"
            "thr_throttle,thr_brake,thr_steer,alarm,recovery_state");

  const auto fields = [](const std::string& line) {
    std::vector<double> out;
    std::istringstream row(line);
    for (std::string cell; std::getline(row, cell, ',');) {
      out.push_back(std::stod(cell));
    }
    return out;
  };
  // Columns: tick, time_sec, div x3, thr x3, alarm, recovery_state.
  const std::vector<std::vector<double>> expect = {
      {0, 0.00, 0.50, 0, 0, 2, 0, 0, 0, 0},
      // Alarm latched at tick 5; counters carry forward unchanged.
      {5, 0.25, 0.50, 0, 0, 2, 0, 0, 1, 0},
      // New divergence sample at tick 6, threshold still carried, alarm held.
      {6, 0.30, 0.75, 0, 0, 2, 0, 0, 1, 0},
      // Rejoin clears the alarm latch.
      {8, 0.40, 0.75, 0, 0, 2, 0, 0, 0, 0},
  };
  for (std::size_t r = 0; r < expect.size(); ++r) {
    const std::vector<double> got = fields(lines[r + 1]);
    ASSERT_EQ(got.size(), 10u) << lines[r + 1];
    for (std::size_t c = 0; c < 10; ++c) {
      EXPECT_NEAR(got[c], expect[r][c], 1e-9) << "row " << r << " col " << c;
    }
  }
}

// ---- export ----

TEST_F(ScratchDirTest, ExportRunTraceWritesJsonAndCsv) {
  obs::TraceRecorder rec(16);
  {
    obs::ScopedRecorder scope(&rec);
    obs::set_tick(2);
    obs::counter(obs::Counter::kCvip, 31.5);
    obs::instant(obs::Instant::kFaultActivated, 42.0);
  }
  obs::TraceOptions opts;
  opts.dir = dir_.string();
  opts.pid = 9;
  obs::export_run_trace(opts, "t1", /*dt=*/0.05, rec,
                        {{"scenario", "lead_slowdown"}});

  const fs::path json_path = dir_ / "run_t1.trace.json";
  const fs::path csv_path = dir_ / "run_t1.csv";
  ASSERT_TRUE(fs::exists(json_path));
  ASSERT_TRUE(fs::exists(csv_path));

  const obs::ChromeTrace trace = obs::parse_chrome_trace(read_file(json_path));
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].pid, 9);
  bool saw_tool = false, saw_scenario = false, saw_dropped = false;
  for (const auto& [key, value] : trace.other_data) {
    if (key == "tool") saw_tool = (value == "dav-flight-recorder");
    if (key == "scenario") saw_scenario = (value == "lead_slowdown");
    if (key == "dropped_events") saw_dropped = (value == "0");
  }
  EXPECT_TRUE(saw_tool);
  EXPECT_TRUE(saw_scenario);
  EXPECT_TRUE(saw_dropped);

  const std::string csv = read_file(csv_path);
  EXPECT_EQ(csv.compare(0, 4, "tick"), 0);
}

// ---- determinism guard ----

// The acceptance gate: enabling the flight recorder must not perturb the
// run. Every semantic field of the trace is tick-stamped and the wall clock
// only ever lands in span durations, so the serialized RunResult of a traced
// run is byte-identical to the untraced one.
TEST_F(ScratchDirTest, TracedRunResultBitIdenticalToUntraced) {
  RunConfig cfg;
  cfg.scenario = ScenarioId::kLeadSlowdown;
  cfg.mode = AgentMode::kRoundRobin;
  cfg.run_seed = 77;
  cfg.fault.kind = FaultModelKind::kPermanent;
  cfg.fault.domain = FaultDomain::kGpu;
  cfg.fault.target_opcode = 2;
  cfg.fault.bit = 30;
  cfg.mitigation = MitigationPolicy::kRestartRecovery;

  const RunResult untraced = run_experiment(cfg);

  RunConfig traced_cfg = cfg;
  traced_cfg.trace.dir = dir_.string();
  traced_cfg.trace.label = "det";
  traced_cfg.trace.capacity = 4096;
  const RunResult traced = run_experiment(traced_cfg);

  EXPECT_EQ(serialize_run_result(untraced), serialize_run_result(traced));

  // And the trace actually materialized with real content.
  const fs::path json_path = dir_ / "run_det.trace.json";
  ASSERT_TRUE(fs::exists(json_path));
  const obs::ChromeTrace trace = obs::parse_chrome_trace(read_file(json_path));
  EXPECT_GT(trace.events.size(), 100u);
  bool saw_span = false, saw_counter = false;
  for (const obs::ChromeEvent& e : trace.events) {
    saw_span = saw_span || e.ph == 'X';
    saw_counter = saw_counter || e.ph == 'C';
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
}

// Tracing disabled (empty dir) must not install a recorder or write files.
TEST_F(ScratchDirTest, DisabledTraceWritesNothing) {
  RunConfig cfg;
  cfg.scenario = ScenarioId::kLeadSlowdown;
  cfg.run_seed = 5;
  ASSERT_FALSE(cfg.trace.enabled());
  const RunResult r = run_experiment(cfg);
  EXPECT_GT(r.steps, 0);
  EXPECT_FALSE(fs::exists(dir_));
}

}  // namespace
}  // namespace dav
