// PPM round-trip plus edge-case coverage for paths the main suites exercise
// only on the happy path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "campaign/campaign.h"
#include "campaign/metrics.h"
#include "sensors/ppm.h"
#include "sensors/sensor_rig.h"

namespace dav {
namespace {

TEST(Ppm, RoundTripPreservesPixels) {
  Image img(7, 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 7; ++x) {
      img.set(x, y, {static_cast<std::uint8_t>(x * 30),
                     static_cast<std::uint8_t>(y * 50),
                     static_cast<std::uint8_t>((x + y) * 10)});
    }
  }
  const std::string path = ::testing::TempDir() + "/dav_roundtrip.ppm";
  write_ppm(img, path);
  const Image back = read_ppm(path);
  EXPECT_EQ(back.width(), 7);
  EXPECT_EQ(back.height(), 5);
  EXPECT_EQ(back.bytes(), img.bytes());
  std::remove(path.c_str());
}

TEST(Ppm, RenderedFrameExports) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  SensorRig rig(front_camera_rig(), 7);
  const SensorFrame frame = rig.capture(world, 0);
  const std::string path = ::testing::TempDir() + "/dav_frame.ppm";
  write_ppm(frame.cameras[1], path);
  const Image back = read_ppm(path);
  EXPECT_EQ(back.byte_size(), frame.cameras[1].byte_size());
  std::remove(path.c_str());
}

TEST(Ppm, BadPathsThrow) {
  EXPECT_THROW(write_ppm(Image(2, 2), "/nonexistent_dir_xyz/x.ppm"),
               std::runtime_error);
  EXPECT_THROW(read_ppm("/nonexistent_dir_xyz/x.ppm"), std::runtime_error);
}

TEST(Ppm, RejectsWrongMagic) {
  const std::string path = ::testing::TempDir() + "/dav_bad.ppm";
  {
    std::ofstream out(path);
    out << "P3\n2 2\n255\n";
  }
  EXPECT_THROW(read_ppm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Ppm, RejectsTruncated) {
  const std::string path = ::testing::TempDir() + "/dav_trunc.ppm";
  {
    std::ofstream out(path, std::ios::binary);
    out << "P6\n4 4\n255\n";
    out << "only-a-few-bytes";
  }
  EXPECT_THROW(read_ppm(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Campaign / metrics edge cases.
// ---------------------------------------------------------------------------

TEST(MetricsEdge, EmptyCampaignSummary) {
  const CampaignSummary s = summarize_campaign({}, Trajectory{}, 2.0);
  EXPECT_EQ(s.total, 0);
  EXPECT_EQ(s.active, 0);
}

TEST(MetricsEdge, EvaluateDetectionEmptyInputs) {
  ThresholdLut lut;
  const DetectionEval ev = evaluate_detection({}, {}, Trajectory{}, lut, 3,
                                              2.0);
  EXPECT_EQ(ev.confusion.total(), 0u);
  EXPECT_EQ(ev.golden_total, 0);
  EXPECT_TRUE(ev.lead_times_sec.empty());
}

TEST(MetricsEdge, GoldenBaselineOfNothingIsEmpty) {
  EXPECT_TRUE(golden_baseline({}).empty());
}

TEST(DriverEdge, ZeroDurationScenarioTerminates) {
  CampaignScale scale;
  scale.safety_duration_sec = 0.2;
  CampaignManager mgr(scale, 1);
  RunConfig cfg = mgr.base_config(ScenarioId::kLeadSlowdown,
                                  AgentMode::kSingle);
  const RunResult r = run_experiment(cfg);
  EXPECT_LE(r.duration, 0.3);
  EXPECT_GE(r.steps, 1);
}

TEST(DriverEdge, TransientPlannedPastEndNotActivated) {
  CampaignScale scale;
  scale.safety_duration_sec = 5.0;
  CampaignManager mgr(scale, 1);
  RunConfig cfg = mgr.base_config(ScenarioId::kLeadSlowdown,
                                  AgentMode::kRoundRobin);
  cfg.fault.kind = FaultModelKind::kTransient;
  cfg.fault.domain = FaultDomain::kGpu;
  cfg.fault.target_dyn_index = ~0ull;  // unreachable
  const RunResult r = run_experiment(cfg);
  EXPECT_FALSE(r.fault_activated);
  EXPECT_EQ(r.outcome, FaultOutcome::kNotActivated);
}

}  // namespace
}  // namespace dav
