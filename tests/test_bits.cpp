#include <gtest/gtest.h>

#include <cmath>

#include "util/bits.h"

namespace dav {
namespace {

TEST(Rotl64, ZeroAndFullRotationAreIdentity) {
  // Regression: the previous formulation `x >> (64 - k)` shifted by 64 when
  // k == 0, which is undefined behavior (caught by the UBSan hardening pass).
  const std::uint64_t x = 0x0123456789ABCDEFULL;
  EXPECT_EQ(rotl64(x, 0), x);
  EXPECT_EQ(rotl64(x, 64), x);
  EXPECT_EQ(rotl64(x, 128), x);
}

TEST(Rotl64, RotatesBits) {
  EXPECT_EQ(rotl64(1ULL, 1), 2ULL);
  EXPECT_EQ(rotl64(1ULL << 63, 1), 1ULL);
  EXPECT_EQ(rotl64(0x8000000000000001ULL, 4), 0x0000000000000018ULL);
}

TEST(BitDiff, Bytes) {
  EXPECT_EQ(bit_diff(std::uint8_t{0x00}, std::uint8_t{0x00}), 0);
  EXPECT_EQ(bit_diff(std::uint8_t{0xFF}, std::uint8_t{0x00}), 8);
  EXPECT_EQ(bit_diff(std::uint8_t{0b1010}, std::uint8_t{0b0101}), 4);
}

TEST(BitDiff, PaperExample95To96) {
  // Paper §III-D: a pixel changing from 95 to 96 per channel flips 6 bits
  // per channel (95 = 0101'1111, 96 = 0110'0000), i.e. 18 of 24 bits.
  EXPECT_EQ(3 * bit_diff(std::uint8_t{95}, std::uint8_t{96}), 18);
}

TEST(BitDiff, Words) {
  EXPECT_EQ(bit_diff(0xFFFFFFFFu, 0x0u), 32);
  EXPECT_EQ(bit_diff(0x1u, 0x3u), 1);
}

TEST(BitDiff, Floats) {
  EXPECT_EQ(bit_diff(1.0f, 1.0f), 0);
  EXPECT_GT(bit_diff(1.0f, -1.0f), 0);  // sign bit at least
  EXPECT_EQ(bit_diff(0.0f, 0.0f), 0);
}

TEST(FloatBits, RoundTrip) {
  for (float f : {0.0f, 1.0f, -3.5f, 1e-20f, 1e20f}) {
    EXPECT_EQ(bits_float(float_bits(f)), f);
  }
}

TEST(XorFloat, SingleBitFlipIsInvolution) {
  const float x = 123.456f;
  for (int bit = 0; bit < 32; ++bit) {
    const std::uint32_t mask = 1u << bit;
    const float y = xor_float(x, mask);
    EXPECT_NE(float_bits(y), float_bits(x));
    EXPECT_EQ(float_bits(xor_float(y, mask)), float_bits(x));
  }
}

TEST(XorFloat, SignBitNegates) {
  EXPECT_FLOAT_EQ(xor_float(2.5f, 1u << 31), -2.5f);
}

TEST(XorDouble, RoundTrip) {
  const double d = -98.76;
  const std::uint64_t mask = 1ull << 52;
  EXPECT_EQ(double_bits(xor_double(xor_double(d, mask), mask)),
            double_bits(d));
}

TEST(XorFloat, ExponentFlipScales) {
  // Flipping the lowest exponent bit of a power of two doubles or halves.
  const float y = xor_float(1.0f, 1u << 23);
  EXPECT_TRUE(y == 2.0f || y == 0.5f);
}

}  // namespace
}  // namespace dav
