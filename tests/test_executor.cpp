// Process-isolated campaign executor: sandboxing, watchdog, retry, and
// journal resume. The fork/pipe machinery is POSIX-only, matching the
// executor itself (non-POSIX hosts fall back to the in-process path).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/driver.h"
#include "campaign/env_options.h"
#include "campaign/executor.h"
#include "campaign/journal.h"
#include "campaign/serialize.h"
#include "core/threshold_lut.h"

#if defined(__unix__) || defined(__APPLE__)
#define DAV_TEST_POSIX 1
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace dav {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// Deterministic stand-in for run_experiment: cheap, but exercises enough of
/// the record (traces, trajectory) that a serialization slip would show.
RunResult stub_result(const RunConfig& cfg) {
  RunResult r;
  r.scenario = cfg.scenario;
  r.mode = cfg.mode;
  r.fault = cfg.fault;
  r.run_seed = cfg.run_seed;
  r.outcome = FaultOutcome::kMasked;
  r.fault_activated = true;
  r.duration = static_cast<double>(cfg.run_seed % 97) * 0.5;
  r.steps = static_cast<int>(cfg.run_seed % 13);
  r.trajectory.push({static_cast<double>(cfg.run_seed % 7), -1.5});
  r.cvip_trace = {42.0, static_cast<double>(cfg.run_seed % 5)};
  r.cpu_instructions = cfg.run_seed * 3;
  return r;
}

std::vector<RunConfig> make_configs(std::size_t n) {
  std::vector<RunConfig> cfgs(n);
  for (std::size_t i = 0; i < n; ++i) {
    cfgs[i].run_seed = 1000 + i;
    cfgs[i].fault.kind = FaultModelKind::kTransient;
    cfgs[i].fault.target_dyn_index = 7000 + i;
  }
  return cfgs;
}

/// PR 3's fork-per-run strategy (pool disabled): the worker-lifecycle tests
/// below pin its per-run isolation semantics unchanged.
ExecutorOptions fast_options() {
  ExecutorOptions o;
  o.jobs = 2;
  o.pool = false;
  o.run_timeout_sec = 60.0;
  o.max_retries = 0;
  o.retry_backoff_sec = 0.01;
  return o;
}

/// The persistent prefork pool (the default strategy).
ExecutorOptions pool_options(int jobs = 2) {
  ExecutorOptions o;
  o.jobs = jobs;
  o.pool = true;
  o.run_timeout_sec = 60.0;
  o.max_retries = 0;
  o.retry_backoff_sec = 0.01;
  return o;
}

TEST(ExecutorOptions, ValidationRejectsNonsense) {
  ExecutorOptions o;
  o.run_timeout_sec = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = ExecutorOptions{};
  o.max_retries = -1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = ExecutorOptions{};
  o.retry_backoff_sec = -0.1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(ExecutorOptions, EnabledOnlyWhenEnvAsksForIt) {
  ExecutorOptions o;
  o.jobs = 0;
  EXPECT_FALSE(o.enabled());
  o.journal_path = "/tmp/j";
  EXPECT_TRUE(o.enabled());
  o = ExecutorOptions{};
  o.jobs = 4;
  EXPECT_TRUE(o.enabled());
}

TEST(Executor, InProcessPathMatchesDirectCalls) {
  ExecutorOptions o = fast_options();
  o.force_in_process = true;
  CampaignExecutor exec(o, stub_result);
  const auto cfgs = make_configs(5);
  const auto results = exec.run_all(cfgs);
  ASSERT_EQ(results.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(results[i]),
              serialize_run_result(stub_result(cfgs[i])))
        << "index " << i;
  }
  EXPECT_TRUE(exec.quarantined().empty());
}

#if DAV_TEST_POSIX

TEST(Executor, ParallelForkedMatchesSerial) {
  CampaignExecutor exec(fast_options(), stub_result);
  const auto cfgs = make_configs(9);
  const auto results = exec.run_all(cfgs);
  ASSERT_EQ(results.size(), cfgs.size());
  // Workers finish in any order; the merged batch must be bit-identical to a
  // serial sweep anyway.
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(results[i]),
              serialize_run_result(stub_result(cfgs[i])))
        << "index " << i;
  }
  EXPECT_TRUE(exec.quarantined().empty());
  EXPECT_EQ(exec.stats().launched, 9);
}

TEST(Executor, CrashingAndAbortingRunsAreQuarantined) {
  // Seeds 1001 / 1003 die at the OS level inside the worker. Under
  // AddressSanitizer a SIGSEGV becomes a diagnostic + nonzero exit instead of
  // a signal death; both read as "no complete result record" and quarantine.
  const auto fn = [](const RunConfig& cfg) -> RunResult {
    if (cfg.run_seed == 1001) ::raise(SIGSEGV);
    if (cfg.run_seed == 1003) std::abort();
    return stub_result(cfg);
  };
  CampaignExecutor exec(fast_options(), fn);
  const auto cfgs = make_configs(5);
  const auto results = exec.run_all(cfgs);
  ASSERT_EQ(results.size(), cfgs.size());

  for (const std::size_t bad : {std::size_t{1}, std::size_t{3}}) {
    EXPECT_EQ(results[bad].outcome, FaultOutcome::kHarnessError);
    // The placeholder still names the offending run.
    EXPECT_EQ(results[bad].run_seed, cfgs[bad].run_seed);
    EXPECT_EQ(results[bad].fault.target_dyn_index,
              cfgs[bad].fault.target_dyn_index);
  }
  for (const std::size_t good : {std::size_t{0}, std::size_t{2},
                                 std::size_t{4}}) {
    EXPECT_EQ(serialize_run_result(results[good]),
              serialize_run_result(stub_result(cfgs[good])));
  }
  ASSERT_EQ(exec.quarantined().size(), 2u);
  EXPECT_EQ(exec.quarantined()[0].index, 1u);
  EXPECT_EQ(exec.quarantined()[1].index, 3u);
  EXPECT_EQ(exec.quarantined()[0].cfg.run_seed, 1001u);
  EXPECT_EQ(exec.stats().quarantined, 2);
}

TEST(Executor, WatchdogKillsHangingWorker) {
  const auto fn = [](const RunConfig& cfg) -> RunResult {
    if (cfg.run_seed == 1001) {
      for (;;) ::usleep(10000);  // a hung agent: never returns
    }
    return stub_result(cfg);
  };
  ExecutorOptions o = fast_options();
  o.run_timeout_sec = 0.25;
  CampaignExecutor exec(o, fn);
  const auto cfgs = make_configs(3);
  const auto results = exec.run_all(cfgs);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[1].outcome, FaultOutcome::kHarnessError);
  EXPECT_EQ(results[1].run_seed, 1001u);
  EXPECT_EQ(serialize_run_result(results[0]),
            serialize_run_result(stub_result(cfgs[0])));
  EXPECT_EQ(serialize_run_result(results[2]),
            serialize_run_result(stub_result(cfgs[2])));
  ASSERT_EQ(exec.quarantined().size(), 1u);
  EXPECT_NE(exec.quarantined()[0].what.find("watchdog"), std::string::npos)
      << exec.quarantined()[0].what;
  EXPECT_GE(exec.stats().timeouts, 1);
}

#if defined(__SANITIZE_ADDRESS__)
#define DAV_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DAV_TEST_ASAN 1
#endif
#endif

#ifndef DAV_TEST_ASAN
TEST(Executor, AddressSpaceLimitQuarantinesRunawayAllocation) {
  // RLIMIT_AS turns a runaway allocation into a quarantine instead of an
  // OOM-killed campaign. (Compiled out under ASan, which needs terabytes of
  // virtual address space for shadow memory.)
  const auto fn = [](const RunConfig& cfg) -> RunResult {
    if (cfg.run_seed == 1001) {
      std::vector<std::string> hog;
      for (;;) hog.emplace_back(64u << 20, 'x');
    }
    return stub_result(cfg);
  };
  ExecutorOptions o = fast_options();
  o.address_space_mb = 512;
  CampaignExecutor exec(o, fn);
  const auto cfgs = make_configs(3);
  const auto results = exec.run_all(cfgs);

  EXPECT_EQ(results[1].outcome, FaultOutcome::kHarnessError);
  EXPECT_EQ(results[1].run_seed, 1001u);
  EXPECT_EQ(serialize_run_result(results[0]),
            serialize_run_result(stub_result(cfgs[0])));
  EXPECT_EQ(serialize_run_result(results[2]),
            serialize_run_result(stub_result(cfgs[2])));
  ASSERT_EQ(exec.quarantined().size(), 1u);
}
#endif  // DAV_TEST_ASAN

TEST(Executor, RetryRecoversATransientWorkerDeath) {
  const std::string marker = temp_path("executor_retry_marker");
  // First attempt: leave the marker and die. Retry: marker present, succeed.
  const auto fn = [marker](const RunConfig& cfg) -> RunResult {
    if (cfg.run_seed == 1001) {
      struct stat st {};
      if (::stat(marker.c_str(), &st) != 0) {
        std::ofstream(marker) << "attempt";
        ::raise(SIGKILL);
      }
    }
    return stub_result(cfg);
  };
  ExecutorOptions o = fast_options();
  o.max_retries = 2;
  CampaignExecutor exec(o, fn);
  const auto cfgs = make_configs(3);
  const auto results = exec.run_all(cfgs);

  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(results[i]),
              serialize_run_result(stub_result(cfgs[i])))
        << "index " << i;
  }
  EXPECT_TRUE(exec.quarantined().empty());
  EXPECT_GE(exec.stats().retries, 1);
  std::remove(marker.c_str());
}

TEST(Executor, QuarantineVerdictSurvivesResume) {
  const std::string journal = temp_path("executor_verdict.journal");
  const auto fn = [](const RunConfig& cfg) -> RunResult {
    if (cfg.run_seed == 1002) std::abort();
    return stub_result(cfg);
  };
  const auto cfgs = make_configs(4);

  ExecutorOptions o = fast_options();
  o.journal_path = journal;
  CampaignExecutor first(o, fn);
  const auto ref = first.run_all(cfgs);
  ASSERT_EQ(first.quarantined().size(), 1u);

  // Relaunch over the same journal: everything (including the quarantine
  // verdict) replays without re-executing a single worker.
  CampaignExecutor second(o, fn);
  const auto res = second.run_all(cfgs);
  EXPECT_EQ(second.stats().launched, 0);
  EXPECT_EQ(second.stats().journal_hits, 4);
  ASSERT_EQ(second.quarantined().size(), 1u);
  EXPECT_EQ(second.quarantined()[0].index, 2u);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(res[i]), serialize_run_result(ref[i]))
        << "index " << i;
  }
  std::remove(journal.c_str());
}

TEST(Executor, KillMidFlightThenResumeIsBitIdentical) {
  const std::string journal = temp_path("executor_resume.journal");
  const auto slow_stub = [](const RunConfig& cfg) -> RunResult {
    ::usleep(150000);  // slow enough that a kill lands mid-campaign
    return stub_result(cfg);
  };
  const auto cfgs = make_configs(6);

  // Uninterrupted reference, no journal involved.
  CampaignExecutor ref_exec(fast_options(), slow_stub);
  const auto ref = ref_exec.run_all(cfgs);

  ExecutorOptions o = fast_options();
  o.jobs = 1;
  o.journal_path = journal;

  // Supervisor child: runs the journaled campaign until we SIGKILL it.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    CampaignExecutor exec(o, slow_stub);
    exec.run_all(cfgs);
    ::_exit(0);
  }
  // Wait until at least one full record is journaled (header is 20 bytes; a
  // record is a few hundred), then hard-kill the supervisor.
  bool saw_progress = false;
  for (int i = 0; i < 400; ++i) {
    struct stat st {};
    if (::stat(journal.c_str(), &st) == 0 && st.st_size > 250) {
      saw_progress = true;
      break;
    }
    ::usleep(25000);
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(saw_progress) << "supervisor never journaled a record";

  // Resume in this process: journaled runs replay, the rest re-execute, and
  // the merged batch is bit-identical to the uninterrupted reference.
  CampaignExecutor resumed(o, slow_stub);
  const auto res = resumed.run_all(cfgs);
  ASSERT_EQ(res.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(serialize_run_result(res[i]), serialize_run_result(ref[i]))
        << "index " << i;
  }
  EXPECT_GE(resumed.stats().journal_hits, 1);
  EXPECT_TRUE(resumed.quarantined().empty());
  std::remove(journal.c_str());
}

TEST(Executor, RealRunsAreBitIdenticalAcrossProcessBoundary) {
  // The default RunFn (run_experiment) shipped through fork + pipe must give
  // byte-for-byte the results of calling it in-process: run_experiment is a
  // pure function of RunConfig, and the wire format is bit-exact.
  std::vector<RunConfig> cfgs(2);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    cfgs[i].run_seed = 7 + i;
    cfgs[i].scenario_opts.safety_duration_sec = 2.0;
    cfgs[i].record_traces = true;
  }
  CampaignExecutor exec(fast_options());
  const auto forked = exec.run_all(cfgs);
  ASSERT_EQ(forked.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(forked[i]),
              serialize_run_result(run_experiment(cfgs[i])))
        << "index " << i;
  }
}

// ---- persistent prefork pool ----

TEST(ExecutorPool, MatchesSerialAndForkPerRunByteForByte) {
  const auto cfgs = make_configs(9);

  ExecutorOptions serial = pool_options();
  serial.force_in_process = true;
  CampaignExecutor serial_exec(serial, stub_result);
  const auto ref = serial_exec.run_all(cfgs);

  CampaignExecutor fork_exec(fast_options(), stub_result);
  const auto forked = fork_exec.run_all(cfgs);

  CampaignExecutor pool_exec(pool_options(), stub_result);
  const auto pooled = pool_exec.run_all(cfgs);

  ASSERT_EQ(pooled.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(pooled[i]), serialize_run_result(ref[i]))
        << "pool vs serial, index " << i;
    EXPECT_EQ(serialize_run_result(pooled[i]), serialize_run_result(forked[i]))
        << "pool vs fork-per-run, index " << i;
  }
  EXPECT_TRUE(pool_exec.quarantined().empty());
  // Persistent workers: one spawn wave serves the whole batch.
  EXPECT_EQ(pool_exec.stats().pool_workers, 2);
  EXPECT_EQ(pool_exec.stats().launched, 2);
  EXPECT_EQ(pool_exec.stats().respawns, 0);
  int served = 0;
  for (int s : pool_exec.stats().slot_runs_served) served += s;
  EXPECT_EQ(served, 9);
}

TEST(ExecutorPool, WorkerRespawnsAfterCrashAndBatchCompletes) {
  // One worker serves the whole batch (jobs=1); the crash on run 1 must not
  // take down runs 0 and 2 — the supervisor quarantines run 1, respawns a
  // replacement worker and finishes the batch.
  const auto fn = [](const RunConfig& cfg) -> RunResult {
    if (cfg.run_seed == 1001) ::raise(SIGSEGV);
    return stub_result(cfg);
  };
  CampaignExecutor exec(pool_options(/*jobs=*/1), fn);
  const auto cfgs = make_configs(3);
  const auto results = exec.run_all(cfgs);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[1].outcome, FaultOutcome::kHarnessError);
  EXPECT_EQ(results[1].run_seed, 1001u);
  EXPECT_EQ(serialize_run_result(results[0]),
            serialize_run_result(stub_result(cfgs[0])));
  EXPECT_EQ(serialize_run_result(results[2]),
            serialize_run_result(stub_result(cfgs[2])));
  ASSERT_EQ(exec.quarantined().size(), 1u);
  EXPECT_EQ(exec.quarantined()[0].index, 1u);
  EXPECT_EQ(exec.stats().pool_workers, 1);
  EXPECT_GE(exec.stats().respawns, 1);
}

TEST(ExecutorPool, WatchdogKillsHangingWorkerAndRespawns) {
  const auto fn = [](const RunConfig& cfg) -> RunResult {
    if (cfg.run_seed == 1001) {
      for (;;) ::usleep(10000);  // a hung agent: never returns
    }
    return stub_result(cfg);
  };
  ExecutorOptions o = pool_options(/*jobs=*/1);
  o.run_timeout_sec = 0.25;
  CampaignExecutor exec(o, fn);
  const auto cfgs = make_configs(3);
  const auto results = exec.run_all(cfgs);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[1].outcome, FaultOutcome::kHarnessError);
  EXPECT_EQ(serialize_run_result(results[0]),
            serialize_run_result(stub_result(cfgs[0])));
  EXPECT_EQ(serialize_run_result(results[2]),
            serialize_run_result(stub_result(cfgs[2])));
  ASSERT_EQ(exec.quarantined().size(), 1u);
  EXPECT_NE(exec.quarantined()[0].what.find("watchdog"), std::string::npos)
      << exec.quarantined()[0].what;
  EXPECT_GE(exec.stats().timeouts, 1);
  EXPECT_GE(exec.stats().respawns, 1);
}

TEST(ExecutorPool, RetryRecoversATransientWorkerDeath) {
  const std::string marker = temp_path("pool_retry_marker");
  const auto fn = [marker](const RunConfig& cfg) -> RunResult {
    if (cfg.run_seed == 1001) {
      struct stat st {};
      if (::stat(marker.c_str(), &st) != 0) {
        std::ofstream(marker) << "attempt";
        ::raise(SIGKILL);
      }
    }
    return stub_result(cfg);
  };
  ExecutorOptions o = pool_options();
  o.max_retries = 2;
  CampaignExecutor exec(o, fn);
  const auto cfgs = make_configs(3);
  const auto results = exec.run_all(cfgs);

  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(results[i]),
              serialize_run_result(stub_result(cfgs[i])))
        << "index " << i;
  }
  EXPECT_TRUE(exec.quarantined().empty());
  EXPECT_GE(exec.stats().retries, 1);
  std::remove(marker.c_str());
}

TEST(ExecutorPool, RealRunsBitIdenticalWithFullConfigCodec) {
  // Real run_experiment through the pool's request/response codec, with the
  // full detector + mitigation + trace cluster riding in the request frame:
  // byte-for-byte the serial results. Both runs share a warm key (same
  // scenario, different run_seed), so with jobs=1 the second is a cache hit —
  // the hit must not perturb a single byte.
  ThresholdLut lut;
  VehicleState s;
  s.v = 10.0;
  lut.observe(s, {0.1, 0.1, 0.1});

  std::vector<RunConfig> cfgs(2);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    cfgs[i] = RunConfigBuilder()
                  .scenario(ScenarioId::kLeadSlowdown)
                  .mode(AgentMode::kRoundRobin)
                  .run_seed(7 + i)
                  .record_traces()
                  .online_detection(lut)
                  .mitigation(MitigationPolicy::kRestartRecovery)
                  .build();
    cfgs[i].scenario_opts.safety_duration_sec = 2.0;
  }

  CampaignExecutor pool_exec(pool_options(/*jobs=*/1));
  const auto pooled = pool_exec.run_all(cfgs);
  ASSERT_EQ(pooled.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(pooled[i]),
              serialize_run_result(run_experiment(cfgs[i])))
        << "index " << i;
  }
  EXPECT_EQ(pool_exec.stats().checkpoint_hits, 1u);
  EXPECT_EQ(pool_exec.stats().checkpoint_misses, 1u);
}

TEST(ExecutorPool, KillMidFlightThenResumeIsBitIdentical) {
  const std::string journal = temp_path("pool_resume.journal");
  const auto slow_stub = [](const RunConfig& cfg) -> RunResult {
    ::usleep(150000);  // slow enough that a kill lands mid-campaign
    return stub_result(cfg);
  };
  const auto cfgs = make_configs(6);

  // Uninterrupted serial reference, no journal involved.
  ExecutorOptions serial = pool_options();
  serial.force_in_process = true;
  CampaignExecutor ref_exec(serial, slow_stub);
  const auto ref = ref_exec.run_all(cfgs);

  ExecutorOptions o = pool_options(/*jobs=*/1);
  o.journal_path = journal;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    CampaignExecutor exec(o, slow_stub);
    exec.run_all(cfgs);
    ::_exit(0);
  }
  bool saw_progress = false;
  for (int i = 0; i < 400; ++i) {
    struct stat st {};
    if (::stat(journal.c_str(), &st) == 0 && st.st_size > 250) {
      saw_progress = true;
      break;
    }
    ::usleep(25000);
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(saw_progress) << "supervisor never journaled a record";

  // Resume in pool mode: journaled runs replay, the rest re-execute in
  // fresh pool workers, and the merged batch matches the serial reference.
  CampaignExecutor resumed(o, slow_stub);
  const auto res = resumed.run_all(cfgs);
  ASSERT_EQ(res.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(serialize_run_result(res[i]), serialize_run_result(ref[i]))
        << "index " << i;
  }
  EXPECT_GE(resumed.stats().journal_hits, 1);
  EXPECT_TRUE(resumed.quarantined().empty());
  std::remove(journal.c_str());
}

// ---- live metrics snapshot ----

/// Strict key=value parse: one '=' split per line, non-empty keys. A torn or
/// truncated snapshot fails here, which is the point — the atomic
/// temp-file + rename contract says readers only ever see complete files.
std::vector<std::pair<std::string, std::string>> parse_metrics(
    const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::pair<std::string, std::string>> kv;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    EXPECT_NE(eq, std::string::npos) << "not key=value: " << line;
    EXPECT_GT(eq, 0u) << "empty key: " << line;
    kv.emplace_back(line.substr(0, eq), line.substr(eq + 1));
  }
  return kv;
}

std::string metrics_value(
    const std::vector<std::pair<std::string, std::string>>& kv,
    const std::string& key) {
  for (const auto& [k, v] : kv) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "missing key " << key;
  return {};
}

TEST(ExecutorMetrics, FinalSnapshotIsCompleteAndParseable) {
  ExecutorOptions o = pool_options();
  o.metrics_path = temp_path("exec_metrics.txt");
  // Far beyond the batch runtime: only the forced final write may fire, so
  // the file we parse is exactly the end-of-batch snapshot.
  o.metrics_interval_sec = 3600.0;
  CampaignExecutor exec(o, stub_result);
  const auto cfgs = make_configs(6);
  const auto results = exec.run_all(cfgs);
  ASSERT_EQ(results.size(), cfgs.size());

  const auto kv = parse_metrics(o.metrics_path);
  ASSERT_FALSE(kv.empty());
  EXPECT_EQ(kv.front().first, "schema");
  EXPECT_EQ(kv.front().second, "dav.metrics.v1");
  EXPECT_EQ(metrics_value(kv, "phase"), "done");
  EXPECT_EQ(metrics_value(kv, "runs_total"), "6");
  EXPECT_EQ(metrics_value(kv, "runs_done"), "6");
  EXPECT_EQ(metrics_value(kv, "runs_remaining"), "0");
  EXPECT_EQ(metrics_value(kv, "eta_sec"), "0.000");
  EXPECT_EQ(metrics_value(kv, "quarantined"), "0");
  // Local pool: no remote endpoints in the snapshot.
  EXPECT_EQ(metrics_value(kv, "endpoints"), "0");
  std::remove(o.metrics_path.c_str());
}

TEST(ExecutorMetrics, SnapshotTracksJournalReplayOnResume) {
  // A fully-journaled batch resolves instantly from replay; the snapshot
  // must report the hits and still land on phase=done.
  const std::string journal = temp_path("metrics_resume.journal");
  const auto cfgs = make_configs(4);
  {
    ExecutorOptions o = pool_options();
    o.journal_path = journal;
    o.campaign_fingerprint = 0xABCDull;
    CampaignExecutor exec(o, stub_result);
    (void)exec.run_all(cfgs);
  }
  ExecutorOptions o = pool_options();
  o.journal_path = journal;
  o.campaign_fingerprint = 0xABCDull;
  o.metrics_path = temp_path("metrics_resume.txt");
  CampaignExecutor exec(o, stub_result);
  const auto results = exec.run_all(cfgs);
  ASSERT_EQ(results.size(), cfgs.size());
  const auto kv = parse_metrics(o.metrics_path);
  EXPECT_EQ(metrics_value(kv, "phase"), "done");
  EXPECT_EQ(metrics_value(kv, "journal_hits"), "4");
  EXPECT_EQ(metrics_value(kv, "runs_done"), "4");
  std::remove(journal.c_str());
  std::remove(o.metrics_path.c_str());
}

// ---- checkpoint store: setup tier (the old warm-state cache) ----

TEST(CheckpointSetup, HitEqualsColdRunByteForByte) {
  CheckpointStore store;
  RunConfig a = RunConfigBuilder()
                    .scenario(ScenarioId::kLeadSlowdown)
                    .mode(AgentMode::kRoundRobin)
                    .run_seed(11)
                    .record_traces()
                    .build();
  a.scenario_opts.safety_duration_sec = 2.0;
  RunConfig b = a;
  b.run_seed = 12;  // same setup key, different experiment

  const RunResult cold_a = run_experiment(a);
  const RunResult miss_a = run_experiment(a, &store);   // populates the store
  const RunResult hit_b = run_experiment(b, &store);    // warm-start
  const RunResult cold_b = run_experiment(b);

  EXPECT_EQ(serialize_run_result(miss_a), serialize_run_result(cold_a));
  EXPECT_EQ(serialize_run_result(hit_b), serialize_run_result(cold_b));
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.misses(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(CheckpointSetup, DigestSeparatesWarmupRelevantFields) {
  RunConfig base;
  base.scenario = ScenarioId::kLeadSlowdown;
  base.mode = AgentMode::kRoundRobin;
  base.run_seed = 1;

  RunConfig same = base;
  same.run_seed = 999;  // run seed does not shape warmup state
  same.fault.kind = FaultModelKind::kPermanent;
  EXPECT_EQ(checkpoint_setup_digest(base), checkpoint_setup_digest(same));

  RunConfig other = base;
  other.scenario_seed = base.scenario_seed + 1;
  EXPECT_NE(checkpoint_setup_digest(base), checkpoint_setup_digest(other));
  RunConfig other_mode = base;
  other_mode.mode = AgentMode::kSingle;
  EXPECT_NE(checkpoint_setup_digest(base),
            checkpoint_setup_digest(other_mode));
}

// ---- request codec ----

TEST(RunConfigCodec, RoundTripPreservesDigestAndBytes) {
  ThresholdLut lut;
  VehicleState s;
  s.v = 12.5;
  lut.observe(s, {0.25, 0.125, 1.0 / 3.0});  // 1/3: not exact in 6 digits

  RunConfig cfg = RunConfigBuilder()
                      .scenario(ScenarioId::kGhostCutIn)
                      .mode(AgentMode::kRoundRobin)
                      .run_seed(77)
                      .record_traces()
                      .online_detection(lut)
                      .mitigation(MitigationPolicy::kRestartRecovery)
                      .build();
  cfg.fault.kind = FaultModelKind::kTransient;
  cfg.fault.target_dyn_index = 4242;
  cfg.trace.dir = "/tmp/traces";
  cfg.trace.pid = 9;
  cfg.trace.label = "codec";

  const std::string bytes = serialize_run_config(cfg);
  const RunConfigRecord rec = deserialize_run_config(bytes);
  EXPECT_EQ(run_config_digest(rec.cfg), run_config_digest(cfg));
  ASSERT_NE(rec.cfg.online_lut, nullptr);
  EXPECT_EQ(rec.cfg.trace.label, "codec");
  // The decoded config re-serializes to the same bytes: the LUT text format
  // at max_digits10 precision is an exact double round-trip.
  EXPECT_EQ(serialize_run_config(rec.cfg), bytes);
}

TEST(RunConfigCodec, FramingDetectsCorruptionAndPartialFrames) {
  const std::string framed = frame_message("hello pool");
  FrameSplit part = try_unframe(framed.substr(0, framed.size() - 1));
  EXPECT_EQ(part.status, FrameSplit::Status::kNeedMore);
  FrameSplit full = try_unframe(framed);
  ASSERT_EQ(full.status, FrameSplit::Status::kOk);
  EXPECT_EQ(full.payload, "hello pool");
  EXPECT_EQ(full.consumed, framed.size());
  std::string bad = framed;
  bad[bad.size() - 1] ^= 0x01;
  EXPECT_EQ(try_unframe(bad).status, FrameSplit::Status::kCorrupt);
}

// ---- campaign routing ----

TEST(CampaignManagerRouting, InjectedExecutorOptionsMatchSerialPath) {
  CampaignScale scale;
  scale.golden_runs = 2;
  scale.safety_duration_sec = 2.0;
  scale.long_route_duration_sec = 4.0;

  // The legacy ctor is env-free: defaults mean the serial in-process path.
  CampaignManager legacy(scale, 2022);
  const auto ref = legacy.golden(ScenarioId::kLeadSlowdown,
                                 AgentMode::kRoundRobin, 2);

  const std::string journal = temp_path("campaign_routing.journal");
  EnvOptions env = EnvOptions::defaults();
  env.jobs = 2;
  env.journal_path = journal;
  CampaignManager routed(scale, env, 2022);
  const auto res = routed.golden(ScenarioId::kLeadSlowdown,
                                 AgentMode::kRoundRobin, 2);
  // Second manager over the same journal: pure replay, still identical.
  CampaignManager resumed(scale, env, 2022);
  const auto res2 = resumed.golden(ScenarioId::kLeadSlowdown,
                                   AgentMode::kRoundRobin, 2);

  ASSERT_EQ(res.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(serialize_run_result(res[i]), serialize_run_result(ref[i]))
        << "index " << i;
    EXPECT_EQ(serialize_run_result(res2[i]), serialize_run_result(ref[i]))
        << "index " << i;
  }
  EXPECT_TRUE(routed.quarantined().empty());
  std::remove(journal.c_str());
}

TEST(CampaignManagerRouting, LegacyConstructorIgnoresEnvironment) {
  // Malformed env vars must not reach the env-free overload: only
  // EnvOptions::from_env() reads the environment, and only when asked.
  setenv("DAV_JOBS", "not-a-number", 1);
  CampaignScale scale;
  scale.golden_runs = 1;
  scale.safety_duration_sec = 1.0;
  EXPECT_NO_THROW({ CampaignManager mgr(scale, 2022); });
  EXPECT_THROW(EnvOptions::from_env(), std::invalid_argument);
  unsetenv("DAV_JOBS");
}

#endif  // DAV_TEST_POSIX

}  // namespace
}  // namespace dav
