// Platform-level plausibility monitoring and the extended metrics:
// output-validator DUEs (non-finite actuation), the stuck-vehicle watchdog,
// and violation-onset lead times.
#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/metrics.h"

namespace dav {
namespace {

CampaignScale tiny_scale() {
  CampaignScale s;
  s.golden_runs = 3;
  s.training_runs_per_scenario = 1;
  s.safety_duration_sec = 15.0;
  s.long_route_duration_sec = 20.0;
  return s;
}

TEST(ViolationOnset, CollisionTimeWins) {
  Trajectory base;
  for (int i = 0; i < 10; ++i) base.push({i * 1.0, 0.0});
  RunResult run;
  run.dt = 0.1;
  for (int i = 0; i < 10; ++i) run.trajectory.push({i * 1.0, 5.0});
  run.collision = true;
  run.collision_time = 0.35;
  EXPECT_DOUBLE_EQ(violation_onset_time(run, base, 2.0), 0.35);
}

TEST(ViolationOnset, FirstExceedanceIndex) {
  Trajectory base;
  for (int i = 0; i < 10; ++i) base.push({i * 1.0, 0.0});
  RunResult run;
  run.dt = 0.1;
  for (int i = 0; i < 10; ++i) {
    run.trajectory.push({i * 1.0, i >= 6 ? 3.0 : 0.0});
  }
  EXPECT_DOUBLE_EQ(violation_onset_time(run, base, 2.0), 0.6);
}

TEST(ViolationOnset, NegativeWhenNoViolation) {
  Trajectory base;
  base.push({0, 0});
  RunResult run;
  run.trajectory.push({0, 0.5});
  EXPECT_LT(violation_onset_time(run, base, 2.0), 0.0);
}

TEST(StuckWatchdog, FiresOnUnexplainedStandstill) {
  // A permanent fault that floods the masks makes both agents see a phantom
  // obstacle and freeze; the platform watchdog must convert this into a DUE.
  CampaignManager mgr(tiny_scale(), 2022);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kGhostCutIn, AgentMode::kRoundRobin);
  cfg.scenario_opts.safety_duration_sec = 25.0;
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  plan.target_opcode = static_cast<int>(GpuOpcode::kFScale);
  plan.bit = 31;
  cfg.fault = plan;
  bool saw_stuck_due = false;
  for (std::uint64_t seed = 1; seed <= 4 && !saw_stuck_due; ++seed) {
    cfg.run_seed = seed;
    const RunResult r = run_experiment(cfg);
    // Either the manifestation model produced a crash/hang directly, or the
    // phantom-freeze was caught by the watchdog; in all cases due must hold
    // whenever the ego ended up parked mid-route without cause.
    if (r.due && r.outcome == FaultOutcome::kHang) saw_stuck_due = true;
  }
  EXPECT_TRUE(saw_stuck_due);
}

TEST(StuckWatchdog, DoesNotFireAtRedLights) {
  CampaignManager mgr(tiny_scale(), 2022);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLongRoute02, AgentMode::kSingle);
  cfg.scenario_opts.long_route_duration_sec = 40.0;
  cfg.run_seed = 3;
  const RunResult r = run_experiment(cfg);
  // Route02 contains a red-light stop longer than a watchdog period.
  EXPECT_FALSE(r.due);
}

TEST(StuckWatchdog, CanBeDisabled) {
  CampaignManager mgr(tiny_scale(), 2022);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
  cfg.stuck_watchdog_sec = 0.0;
  cfg.run_seed = 4;
  EXPECT_FALSE(run_experiment(cfg).due);
}

TEST(LeadTimes, ComputedAgainstOnset) {
  ThresholdLut lut;  // floors only: any sizeable divergence alarms
  Trajectory base;
  for (int i = 0; i < 200; ++i) base.push({i * 0.5, 0.0});
  RunResult run;
  run.dt = 0.05;
  run.fault.kind = FaultModelKind::kTransient;
  for (int i = 0; i < 200; ++i) {
    run.trajectory.push({i * 0.5, i >= 100 ? 5.0 : 0.0});  // onset at t=5
  }
  VehicleState s;
  s.v = 10.0;
  for (int i = 0; i < 200; ++i) {
    const double mag = i >= 20 ? 0.9 : 0.0;  // detectable from t=1
    run.observations.push_back({i * 0.05, s, {mag, 0.0, 0.0}});
  }
  const DetectionEval ev = evaluate_detection({run}, {}, base, lut, 3, 2.0);
  ASSERT_EQ(ev.lead_times_sec.size(), 1u);
  EXPECT_NEAR(ev.lead_times_sec[0], 5.0 - 1.0, 0.3);
}

}  // namespace
}  // namespace dav
