// Platform-level plausibility monitoring and the extended metrics:
// output-validator DUEs (non-finite actuation), the stuck-vehicle watchdog,
// and violation-onset lead times.
#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/metrics.h"

namespace dav {
namespace {

CampaignScale tiny_scale() {
  CampaignScale s;
  s.golden_runs = 3;
  s.training_runs_per_scenario = 1;
  s.safety_duration_sec = 15.0;
  s.long_route_duration_sec = 20.0;
  return s;
}

TEST(ViolationOnset, CollisionTimeWins) {
  Trajectory base;
  for (int i = 0; i < 10; ++i) base.push({i * 1.0, 0.0});
  RunResult run;
  run.dt = 0.1;
  for (int i = 0; i < 10; ++i) run.trajectory.push({i * 1.0, 5.0});
  run.collision = true;
  run.collision_time = 0.35;
  EXPECT_DOUBLE_EQ(violation_onset_time(run, base, 2.0), 0.35);
}

TEST(ViolationOnset, FirstExceedanceIndex) {
  Trajectory base;
  for (int i = 0; i < 10; ++i) base.push({i * 1.0, 0.0});
  RunResult run;
  run.dt = 0.1;
  for (int i = 0; i < 10; ++i) {
    run.trajectory.push({i * 1.0, i >= 6 ? 3.0 : 0.0});
  }
  EXPECT_DOUBLE_EQ(violation_onset_time(run, base, 2.0), 0.6);
}

TEST(ViolationOnset, NegativeWhenNoViolation) {
  Trajectory base;
  base.push({0, 0});
  RunResult run;
  run.trajectory.push({0, 0.5});
  EXPECT_LT(violation_onset_time(run, base, 2.0), 0.0);
}

TEST(StuckWatchdog, FiresOnUnexplainedStandstill) {
  // A permanent fault that floods the masks makes both agents see a phantom
  // obstacle and freeze; the platform watchdog must convert this into a DUE.
  CampaignManager mgr(tiny_scale(), 2022);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kGhostCutIn, AgentMode::kRoundRobin);
  cfg.scenario_opts.safety_duration_sec = 25.0;
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  plan.target_opcode = static_cast<int>(GpuOpcode::kFScale);
  plan.bit = 31;
  cfg.fault = plan;
  bool saw_stuck_due = false;
  for (std::uint64_t seed = 1; seed <= 4 && !saw_stuck_due; ++seed) {
    cfg.run_seed = seed;
    const RunResult r = run_experiment(cfg);
    // Either the manifestation model produced a crash/hang directly, or the
    // phantom-freeze was caught by the watchdog; in all cases due must hold
    // whenever the ego ended up parked mid-route without cause.
    if (r.due && r.outcome == FaultOutcome::kHang) saw_stuck_due = true;
  }
  EXPECT_TRUE(saw_stuck_due);
}

TEST(StuckWatchdog, DoesNotFireAtRedLights) {
  CampaignManager mgr(tiny_scale(), 2022);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLongRoute02, AgentMode::kSingle);
  cfg.scenario_opts.long_route_duration_sec = 40.0;
  cfg.run_seed = 3;
  const RunResult r = run_experiment(cfg);
  // Route02 contains a red-light stop longer than a watchdog period.
  EXPECT_FALSE(r.due);
}

TEST(StuckWatchdog, CanBeDisabled) {
  CampaignManager mgr(tiny_scale(), 2022);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
  cfg.stuck_watchdog_sec = 0.0;
  cfg.run_seed = 4;
  EXPECT_FALSE(run_experiment(cfg).due);
}

TEST(HangWatchdog, DueTimeClampedToRunEnd) {
  // A hang stamped at t_hang + watchdog_sec can exceed the scheduled end of
  // the run when the world finishes mid-coast; the recorded detection time
  // must be clamped to the actual end of the run (regression: MTTR and
  // lead-time math otherwise sees detections "after" the run).
  CampaignManager mgr(tiny_scale(), 2022);
  bool saw_hang = false;
  for (std::uint64_t seed = 1; seed <= 12 && !saw_hang; ++seed) {
    RunConfig cfg =
        mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
    cfg.run_seed = seed;
    cfg.watchdog_sec = 60.0;  // far longer than the 15 s scenario remainder
    FaultPlan plan;
    plan.kind = FaultModelKind::kPermanent;
    plan.domain = FaultDomain::kGpu;
    plan.target_opcode = static_cast<int>(GpuOpcode::kBra);  // control class
    plan.bit = 7;
    cfg.fault = plan;
    const RunResult r = run_experiment(cfg);
    if (r.due_source != DueSource::kHangWatchdog) continue;
    saw_hang = true;
    EXPECT_LE(r.due_time, r.duration + 1e-9);
    EXPECT_LE(r.due_time, r.scheduled_duration + 1e-9);
  }
  EXPECT_TRUE(saw_hang) << "no seed in the sweep produced a watchdog hang";
}

TEST(OutputValidator, NonFiniteActuationIsDue) {
  // A CPU data-path corruption that drives the computed command to +/-inf
  // must be rejected by the ECU as a platform DUE (output plausibility
  // validation), not silently applied to the vehicle.
  CampaignManager mgr(tiny_scale(), 2022);
  bool saw_validator_due = false;
  for (int opcode : {static_cast<int>(CpuOpcode::kMul),
                     static_cast<int>(CpuOpcode::kAdd),
                     static_cast<int>(CpuOpcode::kFma),
                     static_cast<int>(CpuOpcode::kClampOp)}) {
    for (std::uint64_t seed = 1; seed <= 6 && !saw_validator_due; ++seed) {
      RunConfig cfg =
          mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
      cfg.run_seed = seed;
      FaultPlan plan;
      plan.kind = FaultModelKind::kPermanent;
      plan.domain = FaultDomain::kCpu;
      plan.target_opcode = opcode;
      plan.bit = 30;  // 1.0f ^ bit30 = +inf: exponent saturates
      cfg.fault = plan;
      const RunResult r = run_experiment(cfg);
      if (r.due_source == DueSource::kOutputValidator) {
        saw_validator_due = true;
        EXPECT_TRUE(r.due);
        EXPECT_EQ(r.outcome, FaultOutcome::kCrash);
      }
    }
    if (saw_validator_due) break;
  }
  EXPECT_TRUE(saw_validator_due)
      << "no CPU bit-30 corruption reached the output validator";
}

TEST(Failback, StopsVehicleWithoutCollision) {
  // Once a DUE engages the failback, the run must end with the vehicle
  // brought to a stop before the scheduled end, collision-free (the paper's
  // safe-state assumption).
  CampaignManager mgr(tiny_scale(), 2022);
  bool saw_failback_stop = false;
  for (std::uint64_t seed = 1; seed <= 8 && !saw_failback_stop; ++seed) {
    RunConfig cfg =
        mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
    cfg.run_seed = seed;
    FaultPlan plan;
    plan.kind = FaultModelKind::kPermanent;
    plan.domain = FaultDomain::kGpu;
    plan.target_opcode = static_cast<int>(GpuOpcode::kLdg);  // memory class
    plan.bit = 12;
    cfg.fault = plan;
    const RunResult r = run_experiment(cfg);
    if (!r.due || r.recovery.failback_ticks == 0) continue;
    saw_failback_stop = true;
    EXPECT_FALSE(r.collision);
    // The loop breaks as soon as the ego is stopped: the run ends early.
    EXPECT_LT(r.duration, r.scheduled_duration);
    EXPECT_GE(r.due_time, 0.0);
  }
  EXPECT_TRUE(saw_failback_stop)
      << "no seed in the sweep engaged the failback";
}

TEST(LeadTimes, ComputedAgainstOnset) {
  ThresholdLut lut;  // floors only: any sizeable divergence alarms
  Trajectory base;
  for (int i = 0; i < 200; ++i) base.push({i * 0.5, 0.0});
  RunResult run;
  run.dt = 0.05;
  run.fault.kind = FaultModelKind::kTransient;
  for (int i = 0; i < 200; ++i) {
    run.trajectory.push({i * 0.5, i >= 100 ? 5.0 : 0.0});  // onset at t=5
  }
  VehicleState s;
  s.v = 10.0;
  for (int i = 0; i < 200; ++i) {
    const double mag = i >= 20 ? 0.9 : 0.0;  // detectable from t=1
    run.observations.push_back({i * 0.05, s, {mag, 0.0, 0.0}});
  }
  const DetectionEval ev = evaluate_detection({run}, {}, base, lut, 3, 2.0);
  ASSERT_EQ(ev.lead_times_sec.size(), 1u);
  EXPECT_NEAR(ev.lead_times_sec[0], 5.0 - 1.0, 0.3);
}

}  // namespace
}  // namespace dav
