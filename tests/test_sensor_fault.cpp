// Sensor-path fault injection (fi/sensor_fault.h) and its campaign plumbing.
//
// The load-bearing guarantees pinned here:
//   * Pre-PR byte identity: a plan-free, fusion-free RunConfig/RunResult
//     serializes to EXACTLY the bytes (and digests) the pre-sensor-fault
//     codec produced — hardcoded FNV pins, computed from the pre-extension
//     build. Existing journals stay parseable and digest-stable.
//   * With a plan, the whole pipeline is a pure function of (config): two
//     runs of the same seed+plan are byte-identical, serial or pooled.
//   * The injector's per-model semantics and its per-tick stream
//     independence (corruption at tick T never depends on earlier ticks).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/driver.h"
#include "campaign/metrics.h"
#include "campaign/serialize.h"
#include "fi/plan_generator.h"
#include "fi/sensor_fault.h"
#include "sensors/sensor_rig.h"
#include "sim/scenario.h"
#include "util/bits.h"

namespace dav {
namespace {

std::uint64_t fnv_of(const std::string& b) {
  return fnv1a64(b.data(), b.size());
}

// --- Pre-PR pins -----------------------------------------------------------
// Constants computed from the build at the commit BEFORE the sensor-fault
// extension existed. If one of these fails, the extension leaked into the
// plan-free wire format and every existing journal/digest just broke.

RunConfig sample_config() {
  RunConfig cfg;
  cfg.scenario = ScenarioId::kGhostCutIn;
  cfg.scenario_seed = 7;
  cfg.mode = AgentMode::kDuplicate;
  cfg.overlap_ratio = 0.25;
  cfg.fault.kind = FaultModelKind::kPermanent;
  cfg.fault.domain = FaultDomain::kCpu;
  cfg.fault.target_opcode = 3;
  cfg.fault.bit = 21;
  cfg.run_seed = 424242;
  cfg.record_traces = true;
  return cfg;
}

RunResult sample_result() {
  RunResult r;
  r.scenario = ScenarioId::kGhostCutIn;
  r.mode = AgentMode::kDuplicate;
  r.fault.kind = FaultModelKind::kTransient;
  r.fault.domain = FaultDomain::kCpu;
  r.fault.target_dyn_index = 123456789;
  r.fault.target_opcode = 17;
  r.fault.bit = 5;
  r.run_seed = 99;
  r.outcome = FaultOutcome::kSdc;
  r.fault_activated = true;
  r.collision = true;
  r.collision_time = 12.25;
  r.flags.collision = true;
  r.flags.red_light_violation = true;
  r.flags.off_road = true;
  r.trajectory.push({1.5, -2.5});
  r.trajectory.push({3.0, 4.0});
  r.duration = 29.5;
  r.scheduled_duration = 30.0;
  r.dt = 0.05;
  r.steps = 590;
  r.due = true;
  r.due_time = 11.0;
  r.due_source = DueSource::kEngineCrash;
  r.online_alarmed = true;
  r.online_alarm_time = 10.5;
  r.recovery.attempts = 2;
  r.recovery.completed = 1;
  r.recovery.escalated = true;
  r.recovery.first_detector_alarm_time = 10.5;
  r.recovery.events.push_back(
      RecoveryEvent{1, DueSource::kEngineCrash, 10.5, 10.6, 12.6, 210, 212,
                    252});
  r.recovery.nominal_ticks = 500;
  r.recovery.probe_ticks = 6;
  r.recovery.degraded_ticks = 40;
  r.recovery.failback_ticks = 44;
  StepObservation obs;
  obs.time = 1.0;
  obs.state.pose.pos = {2.0, 3.0};
  obs.state.pose.yaw = 0.25;
  obs.state.v = 9.0;
  obs.state.a = 0.5;
  obs.state.omega = 0.01;
  obs.state.alpha = 0.002;
  obs.delta = ActuationDelta{0.1, 0.2, 0.3};
  r.observations.push_back(obs);
  r.time_trace = {0.05, 0.1};
  r.throttle_trace = {0.5, 0.6};
  r.brake_trace = {0.0, 0.1};
  r.steer_trace = {-0.05, 0.05};
  r.cvip_trace = {40.0, 39.0};
  r.acting_agent_trace = {0, 1};
  r.gpu_instructions = 1111111;
  r.cpu_instructions = 2222222;
  r.agent_state_bytes = 4096;
  r.sensor_frame_bytes = 62208;
  return r;
}

TEST(SensorFaultCodec, PlanFreeConfigBytesArePinnedPrePr) {
  const std::string def = serialize_run_config(RunConfig{});
  EXPECT_EQ(def.size(), 151u);
  EXPECT_EQ(fnv_of(def), 0x6d6f47d146fbb8beULL);
  EXPECT_EQ(run_config_digest(RunConfig{}), 0x4f55b58c604a1fd9ULL);

  const std::string sample = serialize_run_config(sample_config());
  EXPECT_EQ(sample.size(), 151u);
  EXPECT_EQ(fnv_of(sample), 0x5f19f1b6749eaffdULL);
  EXPECT_EQ(run_config_digest(sample_config()), 0x22931c5c5b83abdeULL);
}

TEST(SensorFaultCodec, PlanFreeResultBytesArePinnedPrePr) {
  const std::string bytes = serialize_run_result(sample_result());
  EXPECT_EQ(bytes.size(), 480u);
  EXPECT_EQ(fnv_of(bytes), 0x36247859adfba9a9ULL);
}

// --- Round trips -----------------------------------------------------------

SensorFaultPlan sample_plan() {
  SensorFaultPlan p;
  p.model = SensorFaultModel::kCameraBlackout;
  p.sensor_index = 1;
  p.onset_tick = 40;
  p.duration_ticks = 80;
  p.seed = 0xfeedULL;
  p.magnitude = 0.75;
  return p;
}

TEST(SensorFaultCodec, ConfigRoundTripsPlanAndFusion) {
  RunConfig cfg = sample_config();
  cfg.sensor_fault = sample_plan();
  cfg.fusion.enabled = true;
  cfg.fusion.health.degrade_after = 3;
  cfg.fusion.health.drop_after = 7;
  cfg.fusion.health.rejoin_after = 12;
  cfg.fusion.health.degraded_weight = 0.2;
  cfg.fusion.health.gps_window_ticks = 25;
  cfg.fusion.lidar_corridor_half_deg = 9.0;
  cfg.fusion.min_cruise_mps = 1.5;

  const RunConfigRecord rec = deserialize_run_config(serialize_run_config(cfg));
  const RunConfig& d = rec.cfg;
  EXPECT_EQ(d.sensor_fault.model, cfg.sensor_fault.model);
  EXPECT_EQ(d.sensor_fault.sensor_index, cfg.sensor_fault.sensor_index);
  EXPECT_EQ(d.sensor_fault.onset_tick, cfg.sensor_fault.onset_tick);
  EXPECT_EQ(d.sensor_fault.duration_ticks, cfg.sensor_fault.duration_ticks);
  EXPECT_EQ(d.sensor_fault.seed, cfg.sensor_fault.seed);
  EXPECT_DOUBLE_EQ(d.sensor_fault.magnitude, cfg.sensor_fault.magnitude);
  EXPECT_TRUE(d.fusion.enabled);
  EXPECT_EQ(d.fusion.health.degrade_after, 3);
  EXPECT_EQ(d.fusion.health.drop_after, 7);
  EXPECT_EQ(d.fusion.health.rejoin_after, 12);
  EXPECT_DOUBLE_EQ(d.fusion.health.degraded_weight, 0.2);
  EXPECT_EQ(d.fusion.health.gps_window_ticks, 25);
  EXPECT_DOUBLE_EQ(d.fusion.lidar_corridor_half_deg, 9.0);
  EXPECT_DOUBLE_EQ(d.fusion.min_cruise_mps, 1.5);

  // Fusion without a plan also rides the extension (workers must inherit it).
  RunConfig fusion_only;
  fusion_only.fusion.enabled = true;
  const RunConfigRecord rec2 =
      deserialize_run_config(serialize_run_config(fusion_only));
  EXPECT_TRUE(rec2.cfg.fusion.enabled);
  EXPECT_FALSE(rec2.cfg.sensor_fault.active());
}

TEST(SensorFaultCodec, ResultRoundTripsSensorExtension) {
  RunResult r = sample_result();
  r.sensor_fault = sample_plan();
  r.sensor_fault.model = SensorFaultModel::kTensorBitFlip;
  r.sensor_fault.sensor_index = 0;
  r.sensor_fault.layer = 2;
  r.sensor_fault.bit = 30;
  r.sensor_corruptions = 77;
  r.recovery.sensor_degraded_ticks = 55;
  r.recovery.sensor_events.push_back(
      SensorDegradeEvent{/*channel=*/1, /*onset_tick=*/42, /*onset_time=*/2.1,
                         /*rejoin_tick=*/130, /*rejoin_time=*/6.5,
                         /*dropped=*/true, /*escalated=*/false});
  r.recovery.sensor_events.push_back(
      SensorDegradeEvent{/*channel=*/4, /*onset_tick=*/60, /*onset_time=*/3.0,
                         /*rejoin_tick=*/-1, /*rejoin_time=*/-1.0,
                         /*dropped=*/false, /*escalated=*/true});

  const RunResult d = deserialize_run_result(serialize_run_result(r));
  EXPECT_EQ(d.sensor_fault.model, SensorFaultModel::kTensorBitFlip);
  EXPECT_EQ(d.sensor_fault.layer, 2);
  EXPECT_EQ(d.sensor_fault.bit, 30);
  EXPECT_EQ(d.sensor_corruptions, 77u);
  EXPECT_EQ(d.recovery.sensor_degraded_ticks, 55);
  ASSERT_EQ(d.recovery.sensor_events.size(), 2u);
  EXPECT_EQ(d.recovery.sensor_events[0].channel, 1);
  EXPECT_EQ(d.recovery.sensor_events[0].onset_tick, 42);
  EXPECT_DOUBLE_EQ(d.recovery.sensor_events[0].onset_time, 2.1);
  EXPECT_EQ(d.recovery.sensor_events[0].rejoin_tick, 130);
  EXPECT_DOUBLE_EQ(d.recovery.sensor_events[0].rejoin_time, 6.5);
  EXPECT_TRUE(d.recovery.sensor_events[0].dropped);
  EXPECT_FALSE(d.recovery.sensor_events[0].escalated);
  EXPECT_EQ(d.recovery.sensor_events[1].channel, 4);
  EXPECT_EQ(d.recovery.sensor_events[1].rejoin_tick, -1);
  EXPECT_TRUE(d.recovery.sensor_events[1].escalated);
  // Serialized form re-serializes identically (stable fixed point).
  EXPECT_EQ(serialize_run_result(d), serialize_run_result(r));
}

TEST(SensorFaultCodec, DigestIsSensitiveToEveryPlanField) {
  RunConfig base = sample_config();
  base.sensor_fault = sample_plan();
  base.fusion.enabled = true;
  const std::uint64_t d0 = run_config_digest(base);
  EXPECT_NE(d0, run_config_digest(sample_config()));  // extension visible

  const auto mutated = [&](auto&& mutate) {
    RunConfig m = base;
    mutate(m);
    return run_config_digest(m);
  };
  EXPECT_NE(d0, mutated([](RunConfig& m) {
    m.sensor_fault.model = SensorFaultModel::kCameraFrozen;
  }));
  EXPECT_NE(d0, mutated([](RunConfig& m) { m.sensor_fault.sensor_index = 2; }));
  EXPECT_NE(d0, mutated([](RunConfig& m) { m.sensor_fault.onset_tick = 41; }));
  EXPECT_NE(d0,
            mutated([](RunConfig& m) { m.sensor_fault.duration_ticks = 81; }));
  EXPECT_NE(d0, mutated([](RunConfig& m) { m.sensor_fault.seed = 0xbeef; }));
  EXPECT_NE(d0, mutated([](RunConfig& m) { m.sensor_fault.magnitude = 0.5; }));
  EXPECT_NE(d0, mutated([](RunConfig& m) { m.sensor_fault.layer = 1; }));
  EXPECT_NE(d0, mutated([](RunConfig& m) { m.sensor_fault.bit = 7; }));
  EXPECT_NE(d0, mutated([](RunConfig& m) { m.fusion.enabled = false; }));
  EXPECT_NE(d0, mutated([](RunConfig& m) {
    m.fusion.health.degraded_weight = 0.9;
  }));
}

// --- Injector semantics ----------------------------------------------------

constexpr int kW = 16;
constexpr int kH = 12;

std::vector<std::uint8_t> test_image(std::uint8_t base = 100) {
  std::vector<std::uint8_t> img(static_cast<std::size_t>(kW) * kH * 3);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<std::uint8_t>(base + i % 31);
  }
  return img;
}

TEST(SensorFaultInjector, IdenticalPlansCorruptIdentically) {
  SensorFaultPlan plan = sample_plan();
  plan.model = SensorFaultModel::kCameraSaltPepper;
  SensorFaultInjector a(plan);
  SensorFaultInjector b(plan);
  auto img_a = test_image();
  auto img_b = test_image();
  // Different call orders: per-tick streams make tick 50 independent of
  // whether tick 45 was ever corrupted by this instance.
  a.corrupt_camera(1, 45, img_a.data(), kW, kH);
  a.corrupt_camera(1, 50, img_a.data(), kW, kH);
  auto img_b2 = test_image();
  b.corrupt_camera(1, 45, img_b.data(), kW, kH);
  b.corrupt_camera(1, 50, img_b.data(), kW, kH);
  EXPECT_EQ(img_a, img_b);
  (void)img_b2;

  SensorFaultPlan other = plan;
  other.seed = plan.seed + 1;
  SensorFaultInjector c(other);
  auto img_c = test_image();
  c.corrupt_camera(1, 45, img_c.data(), kW, kH);
  c.corrupt_camera(1, 50, img_c.data(), kW, kH);
  EXPECT_NE(img_a, img_c);
}

TEST(SensorFaultInjector, NoOpOutsideWindowIndexAndKind) {
  SensorFaultPlan plan = sample_plan();  // camera 1, ticks [40, 120)
  SensorFaultInjector inj(plan);
  auto img = test_image();
  const auto orig = img;
  inj.corrupt_camera(1, 39, img.data(), kW, kH);   // before onset
  inj.corrupt_camera(1, 120, img.data(), kW, kH);  // past the window
  inj.corrupt_camera(0, 50, img.data(), kW, kH);   // wrong camera
  std::vector<float> ranges(72, 10.0f);
  const auto ranges_orig = ranges;
  inj.corrupt_lidar(50, ranges);                   // wrong kind
  float gps[6] = {1, 2, 3, 4, 5, 6};
  inj.corrupt_gps(50, gps, 6);                     // wrong kind
  float tensor[4] = {1, 2, 3, 4};
  inj.corrupt_tensor(0, 50, tensor, 4);            // wrong kind
  EXPECT_EQ(img, orig);
  EXPECT_EQ(ranges, ranges_orig);
  EXPECT_FLOAT_EQ(gps[0], 1.0f);
  EXPECT_FLOAT_EQ(tensor[3], 4.0f);
  EXPECT_EQ(inj.corruptions(), 0u);
}

TEST(SensorFaultInjector, BlackoutZeroesTheTargetCamera) {
  SensorFaultInjector inj(sample_plan());
  auto img = test_image();
  inj.corrupt_camera(1, 60, img.data(), kW, kH);
  EXPECT_TRUE(std::all_of(img.begin(), img.end(),
                          [](std::uint8_t b) { return b == 0; }));
  EXPECT_EQ(inj.corruptions(), static_cast<std::uint64_t>(kW) * kH);
}

TEST(SensorFaultInjector, FrozenRepeatsTheLastPreOnsetFrame) {
  SensorFaultPlan plan = sample_plan();
  plan.model = SensorFaultModel::kCameraFrozen;
  SensorFaultInjector inj(plan);
  auto pre = test_image(10);
  inj.corrupt_camera(1, 39, pre.data(), kW, kH);  // cached, not modified
  EXPECT_EQ(pre, test_image(10));
  auto in_window = test_image(200);
  inj.corrupt_camera(1, 70, in_window.data(), kW, kH);
  EXPECT_EQ(in_window, test_image(10));  // replaced by the cached frame
}

TEST(SensorFaultInjector, OcclusionPatchIsStableAcrossTicks) {
  SensorFaultPlan plan = sample_plan();
  plan.model = SensorFaultModel::kCameraOcclusion;
  SensorFaultInjector inj(plan);
  auto t1 = test_image();
  auto t2 = test_image();
  inj.corrupt_camera(1, 50, t1.data(), kW, kH);
  inj.corrupt_camera(1, 90, t2.data(), kW, kH);
  EXPECT_EQ(t1, t2);  // same patch geometry for the fault's lifetime
  EXPECT_NE(t1, test_image());
  EXPECT_GT(inj.corruptions(), 0u);
}

TEST(SensorFaultInjector, LidarDropoutAndGhost) {
  SensorFaultPlan plan = sample_plan();
  plan.model = SensorFaultModel::kLidarDropout;
  plan.sensor_index = 0;
  SensorFaultInjector drop(plan);
  std::vector<float> ranges(72, 20.0f);
  drop.corrupt_lidar(60, ranges);
  const auto zeroed = std::count(ranges.begin(), ranges.end(), 0.0f);
  EXPECT_GT(zeroed, 0);
  EXPECT_LT(zeroed, 72);

  plan.model = SensorFaultModel::kLidarGhost;
  SensorFaultInjector ghost(plan);
  std::vector<float> clean(72, 20.0f);
  ghost.corrupt_lidar(60, clean);
  const auto near = std::count_if(clean.begin(), clean.end(),
                                  [](float r) { return r < 2.0f; });
  EXPECT_GT(near, 0);
}

TEST(SensorFaultInjector, GpsLossAndDrift) {
  SensorFaultPlan plan = sample_plan();
  plan.model = SensorFaultModel::kGpsLoss;
  plan.sensor_index = 0;
  SensorFaultInjector loss(plan);
  float fields[6] = {10.0f, 20.0f, 9.0f, 0.5f, 0.1f, 0.01f};
  loss.corrupt_gps(60, fields, 6);
  for (float f : fields) EXPECT_FLOAT_EQ(f, 0.0f);

  plan.model = SensorFaultModel::kGpsDrift;
  SensorFaultInjector drift(plan);
  float early[6] = {10.0f, 20.0f, 9.0f, 0.5f, 0.1f, 0.01f};
  float late[6] = {10.0f, 20.0f, 9.0f, 0.5f, 0.1f, 0.01f};
  drift.corrupt_gps(45, early, 6);
  drift.corrupt_gps(110, late, 6);
  const double off_early = std::abs(early[0] - 10.0) + std::abs(early[1] - 20.0);
  const double off_late = std::abs(late[0] - 10.0) + std::abs(late[1] - 20.0);
  EXPECT_GT(off_late, off_early);  // the drift ramps with time since onset
}

TEST(SensorFaultInjector, TensorBitFlipFlipsExactlyOneSeededBit) {
  SensorFaultPlan plan = sample_plan();
  plan.model = SensorFaultModel::kTensorBitFlip;
  plan.sensor_index = 0;
  plan.layer = 2;
  plan.bit = 30;
  SensorFaultInjector inj(plan);
  float data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const float orig[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  inj.corrupt_tensor(/*layer=*/1, 60, data, 8);  // wrong layer: no-op
  EXPECT_EQ(std::memcmp(data, orig, sizeof(data)), 0);
  inj.corrupt_tensor(/*layer=*/2, 60, data, 8);
  int changed = 0;
  for (int i = 0; i < 8; ++i) {
    if (data[i] != orig[i]) {
      ++changed;
      const std::uint32_t diff = float_bits(data[i]) ^ float_bits(orig[i]);
      EXPECT_EQ(diff, 1u << 30);
    }
  }
  EXPECT_EQ(changed, 1);
  EXPECT_EQ(inj.corruptions(), 1u);
}

// --- Plan generation -------------------------------------------------------

TEST(SensorPlanGenerator, DeterministicSweepWithValidTargeting) {
  InjectionPlanGenerator gen(77);
  const auto plans =
      gen.sensor_plans(all_sensor_fault_models(), 3, /*onset=*/40,
                       /*duration=*/80);
  EXPECT_EQ(plans.size(), all_sensor_fault_models().size() * 3u);
  const auto again =
      gen.sensor_plans(all_sensor_fault_models(), 3, 40, 80);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(plans[i].seed, again[i].seed);
    EXPECT_EQ(plans[i].model, again[i].model);
  }
  for (const SensorFaultPlan& p : plans) {
    EXPECT_TRUE(p.active());
    EXPECT_GE(p.magnitude, 0.25);
    EXPECT_LE(p.magnitude, 1.0);
    if (p.kind() == SensorKind::kCamera) {
      EXPECT_GE(p.sensor_index, 0);
      EXPECT_LT(p.sensor_index, 3);
    } else {
      EXPECT_EQ(p.sensor_index, 0);
    }
    if (p.model == SensorFaultModel::kTensorBitFlip) {
      EXPECT_GE(p.bit, 0);
      EXPECT_LT(p.bit, 32);
      EXPECT_GE(p.layer, 0);
      EXPECT_LT(p.layer, 4);
    }
  }
}

// --- Validation (satellite: actionable rejection messages) -----------------

void expect_rejected(const RunConfig& cfg, const std::string& needle) {
  try {
    cfg.validate();
    FAIL() << "expected rejection mentioning \"" << needle << "\"";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(RunConfigValidate, RejectsMalformedSensorPlans) {
  RunConfig ok;
  ok.sensor_fault = sample_plan();
  ok.validate();

  RunConfig bad = ok;
  bad.sensor_fault.duration_ticks = 0;
  // duration == 0 means inactive (kNone-equivalent) only when the model is
  // kNone; with a real model it is a misconfigured plan.
  expect_rejected(bad, "duration_ticks");

  bad = ok;
  bad.sensor_fault.duration_ticks = -5;
  expect_rejected(bad, "duration_ticks");

  bad = ok;
  bad.sensor_fault.onset_tick = -1;
  expect_rejected(bad, "onset_tick");

  bad = ok;  // kLeadSlowdown is a safety scenario: 30 s / 0.05 = 600 ticks
  bad.sensor_fault.onset_tick = 600;
  expect_rejected(bad, "scheduled run length");

  bad = ok;
  bad.sensor_fault.sensor_index = 3;
  expect_rejected(bad, "sensor_index");

  bad = ok;
  bad.sensor_fault.model = SensorFaultModel::kGpsLoss;
  bad.sensor_fault.sensor_index = 1;
  expect_rejected(bad, "must be 0");

  bad = ok;
  bad.sensor_fault.magnitude = 1.5;
  expect_rejected(bad, "magnitude");

  bad = ok;
  bad.sensor_fault.model = SensorFaultModel::kTensorBitFlip;
  bad.sensor_fault.sensor_index = 0;
  bad.sensor_fault.bit = 32;
  expect_rejected(bad, "bit");

  bad = ok;
  bad.sensor_fault.model = SensorFaultModel::kTensorBitFlip;
  bad.sensor_fault.sensor_index = 0;
  bad.sensor_fault.layer = 4;
  expect_rejected(bad, "layer");

  bad = ok;  // LiDAR models need fusion (no LiDAR capture without it)
  bad.sensor_fault.model = SensorFaultModel::kLidarDropout;
  bad.sensor_fault.sensor_index = 0;
  expect_rejected(bad, "fusion");
  bad.fusion.enabled = true;
  bad.validate();

  bad = ok;
  bad.fusion.enabled = true;
  bad.fusion.health.drop_after = 0;
  expect_rejected(bad, "drop_after");

  bad = ok;
  bad.fusion.enabled = true;
  bad.fusion.health.degraded_weight = -0.1;
  expect_rejected(bad, "degraded_weight");

  bad = ok;
  bad.fusion.enabled = true;
  bad.fusion.lidar_corridor_half_deg = 0.0;
  expect_rejected(bad, "lidar_corridor_half_deg");
}

// --- End-to-end determinism ------------------------------------------------

TEST(SensorFaultRun, PlanFreeRunsMatchPrePrBuildByteForByte) {
  // FNV pins of whole serialized RunResults, computed from the build at the
  // commit before the sensor-fault subsystem existed. They prove the new
  // capture hook, fusion plumbing, and codec extension leave plan-free runs
  // bit-exact — journals from old campaigns replay unchanged.
  {
    RunConfig cfg;
    cfg.scenario = ScenarioId::kLeadSlowdown;
    cfg.mode = AgentMode::kRoundRobin;
    cfg.run_seed = 2468;
    const std::string b = serialize_run_result(run_experiment(cfg));
    EXPECT_EQ(b.size(), 62559u);
    EXPECT_EQ(fnv_of(b), 0xae1f78abc6093b0dULL);
    EXPECT_EQ(run_config_digest(cfg), 0x0f73663737c4f83bULL);
  }
  {
    RunConfig cfg;
    cfg.scenario = ScenarioId::kGhostCutIn;
    cfg.mode = AgentMode::kDuplicate;
    cfg.mitigation = MitigationPolicy::kRestartRecovery;
    cfg.fault.kind = FaultModelKind::kTransient;
    cfg.fault.domain = FaultDomain::kGpu;
    cfg.fault.target_dyn_index = 500000;
    cfg.fault.bit = 30;
    cfg.run_seed = 1357;
    const std::string b = serialize_run_result(run_experiment(cfg));
    EXPECT_EQ(b.size(), 62647u);
    EXPECT_EQ(fnv_of(b), 0x6e7de7ffb6fd6d1aULL);
    EXPECT_EQ(run_config_digest(cfg), 0xfee975c0b04550bcULL);
  }
}

RunConfig blackout_config() {
  RunConfig cfg;
  cfg.scenario = ScenarioId::kLeadSlowdown;
  cfg.mode = AgentMode::kRoundRobin;
  cfg.run_seed = 31337;
  cfg.fusion.enabled = true;
  cfg.sensor_fault.model = SensorFaultModel::kCameraBlackout;
  cfg.sensor_fault.sensor_index = 1;
  cfg.sensor_fault.onset_tick = 100;
  cfg.sensor_fault.duration_ticks = 120;
  cfg.sensor_fault.seed = 5150;
  return cfg;
}

TEST(SensorFaultRun, SameSeedAndPlanIsByteIdenticalAcrossSerialAndPool) {
  const RunConfig cfg = blackout_config();
  const std::string serial_a = serialize_run_result(run_experiment(cfg));
  const std::string serial_b = serialize_run_result(run_experiment(cfg));
  EXPECT_EQ(serial_a, serial_b);

  // Store-backed path (what pool workers replay) must also be identical.
  CheckpointStore store;
  const std::string warm_cold =
      serialize_run_result(run_experiment(cfg, &store));
  const std::string warm_hot =
      serialize_run_result(run_experiment(cfg, &store));
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(serial_a, warm_cold);
  EXPECT_EQ(serial_a, warm_hot);

  // Process-isolated pool executor: fork + wire codec round trip.
  EnvOptions env = EnvOptions::defaults();
  env.jobs = 2;
  CampaignManager mgr(env.campaign_scale(), env, /*seed=*/2022);
  const std::vector<RunResult> pooled = mgr.run_all({cfg, cfg});
  ASSERT_EQ(pooled.size(), 2u);
  EXPECT_TRUE(mgr.executor_used());
  EXPECT_EQ(serialize_run_result(pooled[0]), serial_a);
  EXPECT_EQ(serialize_run_result(pooled[1]), serial_a);
}

TEST(SensorFaultRun, BlackoutDegradesAndRejoinsUnderFusion) {
  RunConfig cfg = blackout_config();
  cfg.mitigation = MitigationPolicy::kRestartRecovery;
  const RunResult r = run_experiment(cfg);
  EXPECT_GT(r.sensor_corruptions, 0u);
  EXPECT_TRUE(r.fault_activated);
  EXPECT_EQ(r.outcome, FaultOutcome::kSdc);
  // The platform monitor saw the dead camera: time was spent in
  // kSensorDegraded and the episode closed once frames came back.
  EXPECT_GT(r.recovery.sensor_degraded_ticks, 0);
  ASSERT_FALSE(r.recovery.sensor_events.empty());
  const SensorDegradeEvent& ev = r.recovery.sensor_events.front();
  EXPECT_EQ(ev.channel, static_cast<int>(SensorChannel::kCamCenter));
  EXPECT_GE(ev.onset_tick, cfg.sensor_fault.onset_tick);
  EXPECT_GE(ev.rejoin_tick, ev.onset_tick);
  // Sensor degradation must NOT burn compute restarts: the fault is
  // common-mode, so the restart ladder stays untouched.
  EXPECT_EQ(r.recovery.attempts, 0);
  EXPECT_FALSE(r.recovery.escalated);
  // And the mission completes: no collision, full scheduled duration.
  EXPECT_FALSE(r.collision);
  EXPECT_GE(r.duration, r.scheduled_duration - 1.0);

  const RecoverySummary rs = summarize_recovery({r});
  EXPECT_EQ(rs.sensor_degraded_runs, 1);
  EXPECT_GE(rs.sensor_episodes, 1);
  EXPECT_GE(rs.sensor_rejoins, 1);
  EXPECT_GT(rs.mean_sensor_mttr_sec, 0.0);
  EXPECT_EQ(rs.hazard_after_sensor_degrade, 0);
}

TEST(SensorFaultRun, FusionAloneDoesNotFalselyDegrade) {
  // Clean fused run: the plausibility thresholds must not fire on honest
  // sensor noise (threshold calibration guard).
  RunConfig cfg = blackout_config();
  cfg.sensor_fault = SensorFaultPlan{};
  cfg.mitigation = MitigationPolicy::kRestartRecovery;
  const RunResult r = run_experiment(cfg);
  EXPECT_EQ(r.recovery.sensor_degraded_ticks, 0);
  EXPECT_TRUE(r.recovery.sensor_events.empty());
  EXPECT_EQ(r.sensor_corruptions, 0u);
  EXPECT_EQ(r.outcome, FaultOutcome::kMasked);
  EXPECT_FALSE(r.collision);
}

}  // namespace
}  // namespace dav
