#include <gtest/gtest.h>

#include <cmath>

#include "agent/calc.h"
#include "agent/warmup.h"

namespace dav {
namespace {

CrashHangModel never_lethal() {
  CrashHangModel m;
  m.p_crash_data = m.p_hang_data = m.p_crash_mem = m.p_hang_mem = 0.0;
  m.p_crash_ctrl = m.p_hang_ctrl = 0.0;
  return m;
}

TEST(CpuCalc, ArithmeticCorrect) {
  CpuEngine eng;
  eng.configure({}, 0);
  CpuCalc c(eng);
  EXPECT_DOUBLE_EQ(c.add(2.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(c.sub(2.0, 3.0), -1.0);
  EXPECT_DOUBLE_EQ(c.mul(2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(c.div(6.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(c.fma(2.0, 3.0, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(c.min(2.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(c.max(2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(c.abs(-4.0), 4.0);
  EXPECT_DOUBLE_EQ(c.sqrt(9.0), 3.0);
  EXPECT_DOUBLE_EQ(c.sqrt(-1.0), 0.0);  // guarded
  EXPECT_DOUBLE_EQ(c.neg(5.0), -5.0);
  EXPECT_DOUBLE_EQ(c.clamp(5.0, 0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(c.select(true, 1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(c.select(false, 1.0, 2.0), 2.0);
  EXPECT_TRUE(c.less(1.0, 2.0));
  EXPECT_FALSE(c.less(2.0, 1.0));
  EXPECT_NEAR(c.atan2(1.0, 1.0), M_PI / 4, 1e-6);
}

TEST(CpuCalc, DataOpsCarryMemoryTraffic) {
  CpuEngine eng;
  eng.configure({}, 0);
  CpuCalc c(eng);
  for (int i = 0; i < 30; ++i) c.add(1.0, 1.0);
  // Each data op fetches an operand; every third op spills.
  EXPECT_EQ(eng.op_count(CpuOpcode::kLoad), 30u);
  EXPECT_EQ(eng.op_count(CpuOpcode::kStore), 10u);
  EXPECT_EQ(eng.op_count(CpuOpcode::kAdd), 30u);
}

TEST(CpuCalc, ControlMarksCount) {
  CpuEngine eng;
  eng.configure({}, 0);
  CpuCalc c(eng);
  c.call();
  c.loop_iter();
  c.loop_iter();
  c.ret();
  EXPECT_EQ(eng.op_count(CpuOpcode::kCall), 1u);
  EXPECT_EQ(eng.op_count(CpuOpcode::kLoopCnt), 2u);
  EXPECT_EQ(eng.op_count(CpuOpcode::kRet), 1u);
}

TEST(GpuCalc, ArithmeticCorrect) {
  GpuEngine eng;
  eng.configure({}, 0);
  GpuCalc c(eng);
  EXPECT_FLOAT_EQ(c.add(1.0f, 2.0f), 3.0f);
  EXPECT_FLOAT_EQ(c.fma(2.0f, 3.0f, 1.0f), 7.0f);
  EXPECT_FLOAT_EQ(c.relu(-2.0f), 0.0f);
  EXPECT_FLOAT_EQ(c.relu(2.0f), 2.0f);
  EXPECT_FLOAT_EQ(c.clamp(5.0f, 0.0f, 2.0f), 2.0f);
  EXPECT_FLOAT_EQ(c.clamp(-5.0f, 0.0f, 2.0f), 0.0f);
  EXPECT_FLOAT_EQ(c.sqrt(16.0f), 4.0f);
  EXPECT_FLOAT_EQ(c.select(true, 1.0f, 2.0f), 1.0f);
}

class WarmupSeedSweep : public ::testing::TestWithParam<double> {};

TEST_P(WarmupSeedSweep, GpuGainExactlyOneWhenClean) {
  GpuEngine eng;
  eng.configure({}, 0);
  EXPECT_EQ(gpu_isa_warmup(eng, static_cast<float>(GetParam())), 1.0f);
}

TEST_P(WarmupSeedSweep, CpuGainExactlyOneWhenClean) {
  CpuEngine eng;
  eng.configure({}, 0);
  EXPECT_EQ(cpu_isa_warmup(eng, GetParam()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmupSeedSweep,
                         ::testing::Values(0.0, 0.31, 0.77, 1.5, 12.34,
                                           -3.2));

TEST(Warmup, SeededFaultEffectIsDataDependent) {
  // The same permanent fault must perturb the gain differently for
  // different live seeds (the divergence mechanism between the two agents).
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  plan.target_opcode = static_cast<int>(GpuOpcode::kRedAdd);
  plan.bit = 27;
  CrashHangModel silent;
  silent.p_crash_data = silent.p_hang_data = silent.p_crash_mem = 0.0;
  silent.p_hang_mem = silent.p_crash_ctrl = silent.p_hang_ctrl = 0.0;
  GpuEngine a;
  a.configure(plan, 1, silent);
  GpuEngine b;
  b.configure(plan, 1, silent);
  const float ga = gpu_isa_warmup(a, 0.30f);
  const float gb = gpu_isa_warmup(b, 0.31f);
  EXPECT_NE(ga, 1.0f);
  EXPECT_NE(ga, gb);
}

TEST(Warmup, CoversEveryGpuOpcode) {
  GpuEngine eng;
  eng.configure({}, 0);
  gpu_isa_warmup(eng, 0.4f);
  for (int i = 0; i < kNumGpuOpcodes; ++i) {
    EXPECT_GT(eng.op_count(static_cast<GpuOpcode>(i)), 0u)
        << to_string(static_cast<GpuOpcode>(i));
  }
}

TEST(Warmup, CoversEveryCpuOpcode) {
  CpuEngine eng;
  eng.configure({}, 0);
  // One warmup plus a couple of CpuCalc ops (the warmup chain itself uses
  // the calculator-independent exec path).
  cpu_isa_warmup(eng, 0.4);
  for (int i = 0; i < kNumCpuOpcodes; ++i) {
    EXPECT_GT(eng.op_count(static_cast<CpuOpcode>(i)), 0u)
        << to_string(static_cast<CpuOpcode>(i));
  }
}

/// Property: a permanent fault on ANY GPU opcode is activated by a single
/// warmup pass (paper Table I: every permanent injection activates).
class GpuWarmupActivation : public ::testing::TestWithParam<int> {};

TEST_P(GpuWarmupActivation, PermanentFaultActivates) {
  GpuEngine eng;
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  plan.target_opcode = GetParam();
  plan.bit = 3;
  eng.configure(plan, 1, never_lethal());
  gpu_isa_warmup(eng, 0.4f);
  EXPECT_TRUE(eng.fault_activated())
      << to_string(static_cast<GpuOpcode>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, GpuWarmupActivation,
                         ::testing::Range(0, kNumGpuOpcodes));

class CpuWarmupActivation : public ::testing::TestWithParam<int> {};

TEST_P(CpuWarmupActivation, PermanentFaultActivates) {
  CpuEngine eng;
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kCpu;
  plan.target_opcode = GetParam();
  plan.bit = 3;
  eng.configure(plan, 1, never_lethal());
  cpu_isa_warmup(eng, 0.4);
  EXPECT_TRUE(eng.fault_activated())
      << to_string(static_cast<CpuOpcode>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, CpuWarmupActivation,
                         ::testing::Range(0, kNumCpuOpcodes));

TEST(Warmup, FaultPerturbsGain) {
  GpuEngine eng;
  FaultPlan plan;
  plan.kind = FaultModelKind::kPermanent;
  plan.domain = FaultDomain::kGpu;
  // A high-exponent-bit fault on an opcode late in the warmup chain (after
  // the floor/clamp stages that can legitimately mask small perturbations).
  plan.target_opcode = static_cast<int>(GpuOpcode::kRedAdd);
  plan.bit = 30;
  eng.configure(plan, 1, never_lethal());
  const float gain = gpu_isa_warmup(eng, 0.4f);
  EXPECT_NE(gain, 1.0f);
}

}  // namespace
}  // namespace dav
