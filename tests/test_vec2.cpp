#include <gtest/gtest.h>

#include <cmath>

#include "util/vec2.h"

namespace dav {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
  EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {1.0, 2.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v -= {0.5, 0.5};
  EXPECT_EQ(v, Vec2(1.5, 2.5));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(3.0, 5.0));
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ(Vec2(1, 2).dot({3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(Vec2(1, 0).cross({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Vec2(0, 1).cross({1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(Vec2(2, 3).cross({2, 3}), 0.0);
}

TEST(Vec2, NormAndNormalize) {
  EXPECT_DOUBLE_EQ(Vec2(3, 4).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec2(3, 4).norm_sq(), 25.0);
  const Vec2 u = Vec2(3, 4).normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_EQ(Vec2().normalized(), Vec2());
}

TEST(Vec2, PerpIsCcw90) {
  const Vec2 p = Vec2(1, 0).perp();
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(Vec2, Rotation) {
  const Vec2 r = Vec2(1, 0).rotated(M_PI / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  // Rotation preserves norm.
  const Vec2 v{2.0, -3.0};
  EXPECT_NEAR(v.rotated(0.7).norm(), v.norm(), 1e-12);
}

TEST(WrapAngle, WrapsIntoHalfOpenInterval) {
  EXPECT_NEAR(wrap_angle(3 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(wrap_angle(-3 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(wrap_angle(0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_angle(2 * M_PI + 0.25), 0.25, 1e-12);
}

class WrapAngleProperty : public ::testing::TestWithParam<double> {};

TEST_P(WrapAngleProperty, ResultInRangeAndEquivalent) {
  const double a = GetParam();
  const double w = wrap_angle(a);
  EXPECT_GT(w, -M_PI - 1e-12);
  EXPECT_LE(w, M_PI + 1e-12);
  EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
  EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WrapAngleProperty,
                         ::testing::Values(-25.0, -7.3, -3.2, -0.1, 0.0, 0.1,
                                           3.2, 7.3, 25.0, 100.0));

TEST(Pose2, RoundTripWorldLocal) {
  Pose2 pose;
  pose.pos = {5.0, -2.0};
  pose.yaw = 0.8;
  const Vec2 p{3.3, 1.7};
  const Vec2 back = pose.to_local(pose.to_world(p));
  EXPECT_NEAR(back.x, p.x, 1e-12);
  EXPECT_NEAR(back.y, p.y, 1e-12);
}

TEST(Pose2, ForwardMatchesYaw) {
  Pose2 pose;
  pose.yaw = M_PI / 3;
  EXPECT_NEAR(pose.forward().x, 0.5, 1e-12);
  EXPECT_NEAR(pose.forward().y, std::sqrt(3.0) / 2.0, 1e-12);
}

TEST(ClampLerp, Basics) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.4, 0.0, 1.0), 0.4);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
}

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

}  // namespace
}  // namespace dav
