// Harness robustness: RunConfig/CampaignScale input validation and the
// crash-proof campaign supervisor (quarantined kHarnessError runs).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "campaign/campaign.h"
#include "campaign/metrics.h"

namespace dav {
namespace {

CampaignScale tiny_scale() {
  CampaignScale s;
  s.golden_runs = 3;
  s.training_runs_per_scenario = 1;
  s.safety_duration_sec = 15.0;
  s.long_route_duration_sec = 20.0;
  return s;
}

/// Expects cfg.validate() to throw std::invalid_argument whose message
/// mentions `needle` (actionable: it names the offending parameter).
void expect_rejected(const RunConfig& cfg, const std::string& needle) {
  try {
    cfg.validate();
    FAIL() << "expected rejection mentioning '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(RunConfigValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(RunConfig{}.validate());
}

TEST(RunConfigValidate, RejectsNonPositiveDt) {
  RunConfig cfg;
  cfg.dt = 0.0;
  expect_rejected(cfg, "dt");
  cfg.dt = -0.05;
  expect_rejected(cfg, "dt");
}

TEST(RunConfigValidate, RejectsZeroCameraDims) {
  RunConfig cfg;
  cfg.cam_width = 0;
  expect_rejected(cfg, "camera");
  cfg = RunConfig{};
  cfg.cam_height = -1;
  expect_rejected(cfg, "camera");
}

TEST(RunConfigValidate, RejectsOverlapOutsideUnitInterval) {
  RunConfig cfg;
  cfg.overlap_ratio = -0.1;
  expect_rejected(cfg, "overlap_ratio");
  cfg.overlap_ratio = 1.5;
  expect_rejected(cfg, "overlap_ratio");
}

TEST(RunConfigValidate, RejectsNegativeNoiseAndWatchdog) {
  RunConfig cfg;
  cfg.camera_noise_sigma = -1.0;
  expect_rejected(cfg, "camera_noise_sigma");
  cfg = RunConfig{};
  cfg.watchdog_sec = -0.5;
  expect_rejected(cfg, "watchdog_sec");
}

TEST(RunConfigValidate, RejectsNonPositiveScenarioDurations) {
  RunConfig cfg;
  cfg.scenario_opts.safety_duration_sec = 0.0;
  expect_rejected(cfg, "safety_duration_sec");
  cfg = RunConfig{};
  cfg.scenario_opts.long_route_duration_sec = -3.0;
  expect_rejected(cfg, "long_route_duration_sec");
}

TEST(RunConfigValidate, RejectsDegenerateDetectorAndRecovery) {
  ThresholdLut lut;
  RunConfig cfg;
  cfg.online_lut = &lut;
  cfg.online_detector.rw = 0;
  expect_rejected(cfg, "rw");
  cfg.online_detector.rw = 3;
  cfg.online_detector.debounce = 0;
  expect_rejected(cfg, "debounce");

  cfg = RunConfig{};
  cfg.mitigation = MitigationPolicy::kRestartRecovery;
  cfg.recovery.probe_ticks = 0;
  expect_rejected(cfg, "probe_ticks");
  cfg.recovery.probe_ticks = 4;
  cfg.recovery.rewarm_ticks = 0;
  expect_rejected(cfg, "rewarm_ticks");
  cfg.recovery.rewarm_ticks = 20;
  cfg.recovery.max_recoveries = 0;
  expect_rejected(cfg, "max_recoveries");
  cfg.recovery.max_recoveries = 2;
  cfg.recovery.recovery_window_ticks = 0;
  expect_rejected(cfg, "recovery_window_ticks");
}

TEST(CampaignScaleValidate, RejectsNonPositiveSizing) {
  CampaignScale s = tiny_scale();
  s.transient_runs = 0;
  EXPECT_THROW(CampaignManager(s, 2022), std::invalid_argument);
  s = tiny_scale();
  s.safety_duration_sec = -1.0;
  EXPECT_THROW(CampaignManager(s, 2022), std::invalid_argument);
  EXPECT_NO_THROW(CampaignManager(tiny_scale(), 2022));
}

TEST(CampaignSupervisor, QuarantinesThrowingRunAndContinues) {
  CampaignManager mgr(tiny_scale(), 2022);
  RunConfig good =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
  good.run_seed = 5;
  RunConfig bad = good;
  bad.dt = -1.0;  // run_experiment throws std::invalid_argument
  bad.run_seed = 77;

  const auto results = mgr.run_all({good, bad, good});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_NE(results[0].outcome, FaultOutcome::kHarnessError);
  EXPECT_EQ(results[1].outcome, FaultOutcome::kHarnessError);
  EXPECT_NE(results[2].outcome, FaultOutcome::kHarnessError);
  // The quarantined record identifies the offending run (seed + message).
  ASSERT_EQ(mgr.quarantined().size(), 1u);
  EXPECT_EQ(mgr.quarantined()[0].cfg.run_seed, 77u);
  EXPECT_NE(mgr.quarantined()[0].what.find("dt"), std::string::npos);
  // The placeholder result still carries the run identity.
  EXPECT_EQ(results[1].run_seed, 77u);
  EXPECT_EQ(results[1].scenario, ScenarioId::kLeadSlowdown);
}

TEST(CampaignSupervisor, HarnessErrorsExcludedFromSummaries) {
  RunResult ok;
  ok.outcome = FaultOutcome::kSdc;
  ok.fault_activated = true;
  ok.trajectory.push({0.0, 0.0});
  RunResult quarantined;
  quarantined.outcome = FaultOutcome::kHarnessError;
  Trajectory base;
  base.push({0.0, 0.0});
  const CampaignSummary s =
      summarize_campaign({ok, quarantined}, base, /*td=*/2.0);
  EXPECT_EQ(s.total, 2);
  EXPECT_EQ(s.harness_errors, 1);
  EXPECT_EQ(s.active, 1);
}

}  // namespace
}  // namespace dav
