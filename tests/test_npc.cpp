#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/npc.h"

namespace dav {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDt = 0.05;

RoadMap straight_map() {
  return RoadMap(Polyline({{0, 0}, {1000, 0}}), 3.5, 1, 0);
}

TEST(NpcIdm, ConvergesToDesiredSpeedInFreeFlow) {
  IdmParams idm;
  idm.desired_speed = 12.0;
  NpcVehicle npc(1, 0.0, 0.0, 5.0, idm);
  double t = 0.0;
  for (int i = 0; i < 1200; ++i) {
    npc.step(t, kDt, kInf, 0.0, 0.0);
    t += kDt;
  }
  EXPECT_NEAR(npc.speed(), 12.0, 0.3);
}

TEST(NpcIdm, SlowsBehindSlowerLeader) {
  IdmParams idm;
  idm.desired_speed = 15.0;
  NpcVehicle npc(1, 0.0, 0.0, 15.0, idm);
  double t = 0.0;
  double gap = 20.0;
  const double lead_speed = 8.0;
  for (int i = 0; i < 2000; ++i) {
    const double closing = npc.speed() - lead_speed;
    gap = std::max(0.5, gap - closing * kDt);
    npc.step(t, kDt, gap, lead_speed, 0.0);
    t += kDt;
  }
  // Settles near the leader's speed with a safe gap.
  EXPECT_NEAR(npc.speed(), lead_speed, 1.0);
  EXPECT_GT(gap, idm.min_gap * 0.8);
}

TEST(NpcIdm, HardBrakeOnZeroGap) {
  IdmParams idm;
  idm.desired_speed = 10.0;
  NpcVehicle npc(1, 0.0, 0.0, 10.0, idm);
  npc.step(0.0, kDt, 0.005, 0.0, 0.0);
  EXPECT_LT(npc.speed(), 10.0);
}

TEST(NpcEvent, TimeTriggeredEmergencyBrake) {
  IdmParams idm;
  idm.desired_speed = 10.0;
  NpcVehicle npc(1, 0.0, 0.0, 10.0, idm);
  npc.add_event({NpcEvent::Trigger::kAtTime, 1.0,
                 NpcEvent::Action::kEmergencyBrake, 7.0});
  double t = 0.0;
  for (int i = 0; i < 19; ++i) {  // up to t = 0.95: not yet fired
    npc.step(t, kDt, kInf, 0.0, 0.0);
    t += kDt;
  }
  const double v_before = npc.speed();
  for (int i = 0; i < 40; ++i) {
    npc.step(t, kDt, kInf, 0.0, 0.0);
    t += kDt;
  }
  EXPECT_LT(npc.speed(), v_before - 5.0);
  // Emergency brake holds to a complete stop.
  for (int i = 0; i < 100; ++i) {
    npc.step(t, kDt, kInf, 0.0, 0.0);
    t += kDt;
  }
  EXPECT_DOUBLE_EQ(npc.speed(), 0.0);
}

TEST(NpcEvent, EgoGapTriggeredLaneChange) {
  IdmParams idm;
  idm.desired_speed = 14.0;
  NpcVehicle npc(1, 0.0, 3.5, 14.0, idm);
  npc.add_event({NpcEvent::Trigger::kAtEgoGap, 8.0,
                 NpcEvent::Action::kLaneChange, 0.0, /*duration=*/1.0});
  // Signed gap below the threshold: no change.
  npc.step(0.0, kDt, kInf, 0.0, /*ego_gap=*/2.0);
  EXPECT_DOUBLE_EQ(npc.lateral(), 3.5);
  // Threshold reached: lane change begins and completes in ~1 s.
  double t = 0.0;
  for (int i = 0; i < 30; ++i) {
    npc.step(t, kDt, kInf, 0.0, /*ego_gap=*/9.0);
    t += kDt;
  }
  EXPECT_NEAR(npc.lateral(), 0.0, 1e-9);
}

TEST(NpcEvent, SetSpeedChangesTarget) {
  IdmParams idm;
  idm.desired_speed = 10.0;
  NpcVehicle npc(1, 0.0, 0.0, 10.0, idm);
  npc.add_event({NpcEvent::Trigger::kAtTime, 0.0, NpcEvent::Action::kSetSpeed,
                 4.0});
  double t = 0.0;
  for (int i = 0; i < 1500; ++i) {
    npc.step(t, kDt, kInf, 0.0, 0.0);
    t += kDt;
  }
  EXPECT_NEAR(npc.speed(), 4.0, 0.3);
}

TEST(NpcEvent, FiresOnlyOnce) {
  IdmParams idm;
  idm.desired_speed = 10.0;
  NpcVehicle npc(1, 0.0, 0.0, 10.0, idm);
  npc.add_event({NpcEvent::Trigger::kAtTime, 0.0, NpcEvent::Action::kSetSpeed,
                 6.0});
  npc.step(0.0, kDt, kInf, 0.0, 0.0);
  // Firing again must not reset anything (no observable effect to assert
  // beyond not crashing and monotone behavior).
  EXPECT_NO_THROW(npc.step(1.0, kDt, kInf, 0.0, 0.0));
}

TEST(NpcCrash, BrakesOutAndJinks) {
  IdmParams idm;
  idm.desired_speed = 10.0;
  NpcVehicle npc(1, 0.0, 0.0, 10.0, idm);
  npc.crash(9.0, 0.4);
  EXPECT_TRUE(npc.crashed());
  double t = 0.0;
  for (int i = 0; i < 60; ++i) {
    npc.step(t, kDt, kInf, 0.0, 0.0);
    t += kDt;
  }
  EXPECT_DOUBLE_EQ(npc.speed(), 0.0);
  EXPECT_NEAR(npc.lateral(), 0.4, 1e-9);
  // Second crash call is a no-op.
  npc.crash(9.0, -0.4);
  EXPECT_NEAR(npc.lateral(), 0.4, 1e-9);
}

TEST(NpcState, PoseFollowsRouteAndLateral) {
  const RoadMap map = straight_map();
  IdmParams idm;
  NpcVehicle npc(1, 40.0, 3.5, 10.0, idm);
  const VehicleState st = npc.state(map);
  EXPECT_NEAR(st.pose.pos.x, 40.0, 1e-9);
  EXPECT_NEAR(st.pose.pos.y, 3.5, 1e-9);
  EXPECT_NEAR(st.pose.yaw, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(st.v, 10.0);
}

TEST(NpcState, HeadingTiltsDuringLaneChange) {
  const RoadMap map = straight_map();
  IdmParams idm;
  idm.desired_speed = 10.0;
  NpcVehicle npc(1, 0.0, 3.5, 10.0, idm);
  npc.add_event({NpcEvent::Trigger::kAtTime, 0.0, NpcEvent::Action::kLaneChange,
                 0.0, 2.0});
  npc.step(0.0, kDt, kInf, 0.0, 0.0);
  // Moving toward lower lateral -> heading tilts negative (rightward).
  EXPECT_LT(npc.state(map).pose.yaw, 0.0);
}

}  // namespace
}  // namespace dav
