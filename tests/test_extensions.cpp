// Extensions beyond the paper's core evaluation: partial duplication
// (footnote 5), threshold-LUT serialization, and their integration.
#include <gtest/gtest.h>

#include <sstream>

#include "campaign/campaign.h"
#include "campaign/metrics.h"
#include "core/distributor.h"
#include "core/threshold_lut.h"

namespace dav {
namespace {

TEST(OverlapDistributor, ZeroRatioIsPureRoundRobin) {
  SensorDataDistributor d(AgentMode::kRoundRobin, 0.0);
  EXPECT_DOUBLE_EQ(d.overlap_ratio(), 0.0);
  for (int step = 0; step < 8; ++step) {
    const auto disp = d.dispatch(step);
    EXPECT_NE(disp.to_agent0, disp.to_agent1);
  }
}

TEST(OverlapDistributor, RatioControlsOverlapFrequency) {
  SensorDataDistributor d(AgentMode::kRoundRobin, 0.25);
  EXPECT_NEAR(d.overlap_ratio(), 0.25, 1e-12);
  int overlaps = 0;
  for (int step = 0; step < 100; ++step) {
    const auto disp = d.dispatch(step);
    overlaps += disp.to_agent0 && disp.to_agent1;
  }
  EXPECT_EQ(overlaps, 25);
}

TEST(OverlapDistributor, FullOverlapDuplicatesEveryFrame) {
  SensorDataDistributor d(AgentMode::kRoundRobin, 1.0);
  for (int step = 0; step < 6; ++step) {
    const auto disp = d.dispatch(step);
    EXPECT_TRUE(disp.to_agent0 && disp.to_agent1);
    // The acting agent still alternates (fusion stays lockstep).
    EXPECT_EQ(disp.acting_agent, step % 2);
  }
}

TEST(OverlapDistributor, ActingAgentAlternatesOnOverlapFrames) {
  SensorDataDistributor d(AgentMode::kRoundRobin, 0.5);
  for (int step = 0; step < 10; ++step) {
    EXPECT_EQ(d.dispatch(step).acting_agent, step % 2);
  }
}

TEST(OverlapRun, RaisesComputeAndStaysSafe) {
  CampaignScale scale;
  scale.safety_duration_sec = 12.0;
  CampaignManager mgr(scale, 2022);
  RunConfig cfg =
      mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
  cfg.run_seed = 5;
  const RunResult rr = run_experiment(cfg);
  cfg.overlap_ratio = 0.5;
  const RunResult half = run_experiment(cfg);
  EXPECT_FALSE(half.collision);
  EXPECT_FALSE(half.flags.any());
  // 50% overlap processes ~1.5x the frames of pure round-robin.
  EXPECT_GT(static_cast<double>(half.gpu_instructions),
            1.3 * static_cast<double>(rr.gpu_instructions));
  EXPECT_LT(static_cast<double>(half.gpu_instructions),
            1.7 * static_cast<double>(rr.gpu_instructions));
}

TEST(LutSerialization, RoundTripPreservesThresholds) {
  ThresholdLut lut;
  VehicleState s;
  s.v = 10.0;
  s.a = -1.0;
  s.omega = 0.2;
  lut.observe(s, {0.3, 0.2, 0.1});
  s.v = 4.0;
  lut.observe(s, {0.1, 0.5, 0.05});

  std::stringstream ss;
  lut.save(ss);
  const ThresholdLut loaded = ThresholdLut::load(ss);

  EXPECT_EQ(loaded.observations(), lut.observations());
  EXPECT_EQ(loaded.trained_bins(), lut.trained_bins());
  for (double v : {0.0, 4.0, 10.0, 20.0}) {
    for (double a : {-3.0, 0.0, 2.0}) {
      VehicleState q;
      q.v = v;
      q.a = a;
      q.omega = 0.2;
      const ActuationDelta t0 = lut.thresholds(q);
      const ActuationDelta t1 = loaded.thresholds(q);
      EXPECT_DOUBLE_EQ(t0.throttle, t1.throttle);
      EXPECT_DOUBLE_EQ(t0.brake, t1.brake);
      EXPECT_DOUBLE_EQ(t0.steer, t1.steer);
    }
  }
}

TEST(LutSerialization, RejectsGarbage) {
  std::stringstream ss("not-a-lut 9");
  EXPECT_THROW(ThresholdLut::load(ss), std::runtime_error);
}

TEST(LutSerialization, RejectsTruncated) {
  ThresholdLut lut;
  std::stringstream ss;
  lut.save(ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_THROW(ThresholdLut::load(half), std::runtime_error);
}

TEST(LutSerialization, LoadedLutDrivesDetector) {
  ThresholdLut lut;
  VehicleState s;
  s.v = 10.0;
  lut.observe(s, {0.1, 0.1, 0.1});
  std::stringstream ss;
  lut.save(ss);
  const ThresholdLut loaded = ThresholdLut::load(ss);
  ErrorDetector det(loaded, {});
  bool alarmed = false;
  for (int i = 0; i < 20 && !alarmed; ++i) {
    alarmed = det.observe({i * 0.05, s, {0.9, 0.0, 0.0}});
  }
  EXPECT_TRUE(alarmed);
}

}  // namespace
}  // namespace dav
