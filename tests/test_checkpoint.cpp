// Fork-point checkpoints (campaign/checkpoint.h, DESIGN.md §16): the
// byte-identity contract — a run restored from a RunCheckpoint produces a
// RunResult byte-for-byte equal to the straight-through run — plus the
// prefix-digest field rules, the RunCheckpoint codec (bit-exact floats,
// NaN / -0.0 included), deep-tier eviction, and the executor strategies
// (in-process, pool, distributed) with checkpointing folded in.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/driver.h"
#include "campaign/executor.h"
#include "campaign/serialize.h"
#include "core/detector.h"
#include "fi/sensor_fault.h"

#if defined(__unix__) || defined(__APPLE__)
#define DAV_TEST_POSIX 1
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "campaign/transport.h"
#endif

namespace dav {
namespace {

/// A fusion-enabled sensor sweep member: every variant shares the fault-free
/// prefix up to `onset` (same run_seed, same world) and differs only in its
/// sensor plan — the shape the deep tier exists for.
RunConfig sensor_variant(SensorFaultModel model, std::uint64_t plan_seed,
                         int onset = 30) {
  RunConfig cfg;
  cfg.scenario = ScenarioId::kLeadSlowdown;
  cfg.mode = AgentMode::kRoundRobin;
  cfg.run_seed = 777;
  cfg.scenario_opts.safety_duration_sec = 4.0;
  cfg.fusion.enabled = true;
  cfg.sensor_fault.model = model;
  cfg.sensor_fault.sensor_index = 1;
  cfg.sensor_fault.onset_tick = onset;
  cfg.sensor_fault.duration_ticks = 20;
  cfg.sensor_fault.seed = plan_seed;
  cfg.checkpoint.enabled = true;
  return cfg;
}

std::string bytes_of(const RunConfig& cfg, CheckpointStore* store = nullptr) {
  return serialize_run_result(run_experiment(cfg, store));
}

// ---- restored-vs-straight-through byte identity ---------------------------

TEST(CheckpointRestore, SensorVariantsRestoreByteIdentical) {
  const RunConfig a = sensor_variant(SensorFaultModel::kCameraBlackout, 5150);
  const RunConfig b = sensor_variant(SensorFaultModel::kCameraBlackout, 6160);
  // Frozen-at-the-fork variant: its injector must freeze the last pre-onset
  // frame, which only the checkpoint saw (prime_frozen path).
  const RunConfig c = sensor_variant(SensorFaultModel::kCameraFrozen, 7170);

  const std::string straight_a = bytes_of(a);
  const std::string straight_b = bytes_of(b);
  const std::string straight_c = bytes_of(c);

  CheckpointStore store;
  EXPECT_EQ(bytes_of(a, &store), straight_a);  // cold: captures at onset
  EXPECT_EQ(bytes_of(b, &store), straight_b);  // cross-variant restore
  EXPECT_EQ(bytes_of(c, &store), straight_c);  // restore + frozen priming
  EXPECT_EQ(store.deep_misses(), 1u);
  EXPECT_EQ(store.deep_hits(), 2u);
  EXPECT_GE(store.deep_count(), 1u);
}

TEST(CheckpointRestore, TransientSweepSharesPrefixViaDynIndexGate) {
  // Register-level transient variants have no static onset tick; they share
  // a prefix through an explicit capture_tick plus the dyn-index gate (a
  // strike below the captured instruction totals would have landed inside
  // the prefix, so such variants must NOT restore).
  RunConfig base;
  base.scenario = ScenarioId::kLeadSlowdown;
  base.mode = AgentMode::kRoundRobin;
  base.run_seed = 4242;
  base.scenario_opts.safety_duration_sec = 4.0;
  base.checkpoint.enabled = true;
  base.checkpoint.capture_tick = 20;
  base.fault.kind = FaultModelKind::kTransient;
  base.fault.domain = FaultDomain::kGpu;
  base.fault.bit = 12;

  RunConfig late = base;   // strike far past the capture point
  late.fault.target_dyn_index = 50'000'000;
  RunConfig early = base;  // strike inside the prefix
  early.fault.target_dyn_index = 1;

  const std::string straight_late = bytes_of(late);
  const std::string straight_early = bytes_of(early);

  CheckpointStore store;
  EXPECT_EQ(bytes_of(late, &store), straight_late);   // captures at tick 20
  EXPECT_EQ(bytes_of(early, &store), straight_early); // must replay in full
  EXPECT_EQ(store.deep_hits(), 0u);  // early was ineligible, late was cold
  EXPECT_EQ(store.deep_misses(), 2u);

  // A third variant striking past the gate restores the stored prefix.
  RunConfig other = base;
  other.fault.target_dyn_index = 60'000'000;
  const std::string straight_other = bytes_of(other);
  EXPECT_EQ(bytes_of(other, &store), straight_other);
  EXPECT_EQ(store.deep_hits(), 1u);
}

TEST(CheckpointRestore, FullDigestResumeMidRecoveryByteIdentical) {
  // Capture AFTER the detector warm-up and mid-mitigation: an early
  // permanent fault has the recovery FSM in flight by the capture tick, so
  // the checkpoint is non-clean and only its own config (full-digest match)
  // may resume it. The restored suffix must still be byte-identical.
  ThresholdLut lut;
  VehicleState s;
  s.v = 10.0;
  lut.observe(s, {0.1, 0.1, 0.1});

  RunConfig cfg = RunConfigBuilder()
                      .scenario(ScenarioId::kLeadSlowdown)
                      .mode(AgentMode::kRoundRobin)
                      .run_seed(99)
                      .record_traces()
                      .online_detection(lut)
                      .mitigation(MitigationPolicy::kRestartRecovery)
                      .build();
  cfg.scenario_opts.safety_duration_sec = 4.0;
  cfg.fault.kind = FaultModelKind::kPermanent;
  cfg.fault.domain = FaultDomain::kGpu;
  cfg.fault.target_dyn_index = 1000;
  cfg.fault.bit = 30;
  cfg.checkpoint.enabled = true;
  cfg.checkpoint.capture_tick = 40;

  const std::string straight = bytes_of(cfg);
  CheckpointStore store;
  EXPECT_EQ(bytes_of(cfg, &store), straight);  // cold: captures at tick 40
  EXPECT_EQ(bytes_of(cfg, &store), straight);  // exact resume from tick 40
  EXPECT_EQ(store.deep_hits(), 1u);

  // The same plan under a DIFFERENT run seed shares no prefix: it must
  // replay in full, not adopt a foreign non-clean checkpoint.
  RunConfig other_seed = cfg;
  other_seed.run_seed = 100;
  EXPECT_EQ(bytes_of(other_seed, &store), bytes_of(other_seed));
}

TEST(CheckpointRestore, TracingDisablesTheDeepTier) {
  // A restored run would export a truncated flight-recorder trace, so deep
  // checkpointing is mutually exclusive with tracing — results unchanged.
  RunConfig cfg = sensor_variant(SensorFaultModel::kCameraBlackout, 13);
  cfg.trace.dir = ::testing::TempDir();
  const std::string expect = [&] {
    RunConfig plain = cfg;
    plain.trace = {};
    plain.checkpoint = {};
    return bytes_of(plain);
  }();
  CheckpointStore store;
  bytes_of(cfg, &store);
  bytes_of(cfg, &store);
  EXPECT_EQ(store.deep_hits() + store.deep_misses(), 0u);
  EXPECT_EQ(store.deep_count(), 0u);
}

// ---- prefix digest field rules --------------------------------------------

TEST(PrefixDigest, TransientPlanNeverInPrefix) {
  RunConfig a;
  a.scenario = ScenarioId::kLeadSlowdown;
  a.run_seed = 7;
  a.fault.kind = FaultModelKind::kTransient;
  a.fault.target_dyn_index = 1000;
  RunConfig b = a;
  b.fault.target_dyn_index = 2000;
  b.fault.bit = 3;
  EXPECT_EQ(run_config_prefix_digest(a, 0), run_config_prefix_digest(b, 0));
  EXPECT_EQ(run_config_prefix_digest(a, 50), run_config_prefix_digest(b, 50));
}

TEST(PrefixDigest, PermanentPlanEntersPrefixAfterTickZero) {
  RunConfig a;
  a.scenario = ScenarioId::kLeadSlowdown;
  a.run_seed = 7;
  a.fault.kind = FaultModelKind::kPermanent;
  a.fault.target_dyn_index = 1000;
  RunConfig b = a;
  b.fault.target_dyn_index = 2000;
  // Before any instruction ran the plans are indistinguishable; from the
  // first tick a permanent fault may already have fired.
  EXPECT_EQ(run_config_prefix_digest(a, 0), run_config_prefix_digest(b, 0));
  EXPECT_NE(run_config_prefix_digest(a, 1), run_config_prefix_digest(b, 1));
}

TEST(PrefixDigest, SensorPlanEntersPrefixAfterItsOnset) {
  RunConfig faulty;
  faulty.scenario = ScenarioId::kLeadSlowdown;
  faulty.run_seed = 7;
  faulty.fusion.enabled = true;
  faulty.sensor_fault.model = SensorFaultModel::kCameraBlackout;
  faulty.sensor_fault.sensor_index = 1;
  faulty.sensor_fault.onset_tick = 30;
  faulty.sensor_fault.duration_ticks = 20;
  RunConfig clean = faulty;
  clean.sensor_fault = {};
  // At the onset tick the fault has not yet corrupted a frame: variants and
  // the clean run share the prefix. One tick later they have diverged.
  EXPECT_EQ(run_config_prefix_digest(faulty, 30),
            run_config_prefix_digest(clean, 30));
  EXPECT_NE(run_config_prefix_digest(faulty, 31),
            run_config_prefix_digest(clean, 31));
}

TEST(PrefixDigest, SharedPrefixFieldsAreSensitive) {
  RunConfig a;
  a.scenario = ScenarioId::kLeadSlowdown;
  a.run_seed = 7;
  const std::uint64_t base = run_config_prefix_digest(a, 10);
  EXPECT_NE(base, run_config_prefix_digest(a, 11));  // depth is identity
  RunConfig b = a;
  b.run_seed = 8;
  EXPECT_NE(base, run_config_prefix_digest(b, 10));
  b = a;
  b.scenario_seed += 1;
  EXPECT_NE(base, run_config_prefix_digest(b, 10));
  b = a;
  b.mode = AgentMode::kSingle;
  EXPECT_NE(base, run_config_prefix_digest(b, 10));
  b = a;
  b.fusion.enabled = true;
  EXPECT_NE(base, run_config_prefix_digest(b, 10));
}

TEST(PrefixDigest, CheckpointOptionsStayOutOfTheRunDigest) {
  // Like trace: checkpointing never changes WHAT a run computes, so the
  // journal key must not move when a campaign toggles it (checkpoint-off
  // journals stay byte-compatible and resumable either way).
  RunConfig plain;
  plain.scenario = ScenarioId::kLeadSlowdown;
  plain.run_seed = 7;
  RunConfig ck = plain;
  ck.checkpoint.enabled = true;
  ck.checkpoint.capture_tick = 25;
  EXPECT_EQ(run_config_digest(plain), run_config_digest(ck));
  // The wire encoding DOES carry the options (workers need them), but they
  // round-trip faithfully and leave the digest untouched.
  const RunConfigRecord rt = deserialize_run_config(serialize_run_config(ck));
  EXPECT_TRUE(rt.cfg.checkpoint.enabled);
  EXPECT_EQ(rt.cfg.checkpoint.capture_tick, 25);
  EXPECT_EQ(run_config_digest(rt.cfg), run_config_digest(plain));
}

// ---- RunCheckpoint codec --------------------------------------------------

TEST(CheckpointCodec, RoundTripIsByteExactIncludingNanAndNegZero) {
  RunCheckpoint c;
  c.tick = 37;
  c.clean = true;
  c.full_digest = 0x1122334455667788ULL;
  c.prefix_digest = 0x99AABBCCDDEEFF00ULL;
  c.gpu0_total = 123456789;
  c.cpu0_total = 987654321;
  c.last_applied.throttle = 0.25;
  c.last_applied.brake = -0.0;
  c.last_applied.steer = std::nan("");
  c.failing_back = true;
  c.stationary_sec = -0.0;
  c.failback_ticks = 3;
  c.traced_corruptions = 17;
  RunResult partial;
  partial.run_seed = 55;
  partial.duration = 1.25;
  c.partial_result = serialize_run_result(partial);
  c.has_cameras = true;
  c.cameras = {std::vector<std::uint8_t>{1, 2, 3},
               std::vector<std::uint8_t>{},
               std::vector<std::uint8_t>{255, 0, 128}};

  const std::string bytes = serialize_run_checkpoint(c);
  const RunCheckpoint back = deserialize_run_checkpoint(bytes);
  // Bit-exact floats: NaN stays NaN, -0.0 keeps its sign bit.
  EXPECT_TRUE(std::isnan(back.last_applied.steer));
  EXPECT_EQ(back.last_applied.brake, 0.0);
  EXPECT_TRUE(std::signbit(back.last_applied.brake));
  EXPECT_TRUE(std::signbit(back.stationary_sec));
  EXPECT_EQ(back.tick, 37);
  EXPECT_TRUE(back.clean);
  EXPECT_EQ(back.full_digest, c.full_digest);
  EXPECT_EQ(back.prefix_digest, c.prefix_digest);
  EXPECT_EQ(back.gpu0_total, c.gpu0_total);
  EXPECT_EQ(back.cpu0_total, c.cpu0_total);
  EXPECT_EQ(back.partial_result, c.partial_result);
  EXPECT_EQ(back.cameras, c.cameras);
  // Canonical encoding: re-serializing the decoded value reproduces the
  // exact bytes (two equal checkpoints serialize identically).
  EXPECT_EQ(serialize_run_checkpoint(back), bytes);
}

TEST(CheckpointCodec, RoundTripsARealCapturedCheckpoint) {
  // The synthetic round-trip above cannot cover every subsystem payload;
  // capture a real mid-run checkpoint (world, agents, detector, recovery,
  // injector, RNG streams) and pin the same canonical-bytes property.
  ThresholdLut lut;
  VehicleState s;
  s.v = 10.0;
  lut.observe(s, {0.1, 0.1, 0.1});
  RunConfig cfg = RunConfigBuilder()
                      .scenario(ScenarioId::kLeadSlowdown)
                      .mode(AgentMode::kRoundRobin)
                      .run_seed(31)
                      .record_traces()
                      .online_detection(lut)
                      .mitigation(MitigationPolicy::kRestartRecovery)
                      .sensor_fault([] {
                        SensorFaultPlan p;
                        p.model = SensorFaultModel::kCameraBlackout;
                        p.sensor_index = 1;
                        p.onset_tick = 25;
                        p.duration_ticks = 10;
                        p.seed = 9;
                        return p;
                      }())
                      .fusion([] {
                        FusionConfig f;
                        f.enabled = true;
                        return f;
                      }())
                      .build();
  cfg.scenario_opts.safety_duration_sec = 3.0;
  cfg.checkpoint.enabled = true;

  CheckpointStore store;
  run_experiment(cfg, &store);
  ASSERT_EQ(store.deep_count(), 1u);

  // Reach the stored blob through the store's own lookup.
  RunConfig variant = cfg;
  variant.sensor_fault.seed = 10;
  const CheckpointStore::DeepEntry* e = store.find_deep(variant);
  ASSERT_NE(e, nullptr);
  const RunCheckpoint back = deserialize_run_checkpoint(e->blob);
  EXPECT_EQ(back.tick, 25);
  EXPECT_TRUE(back.clean);
  EXPECT_TRUE(back.has_detector);
  EXPECT_TRUE(back.has_recovery);
  EXPECT_TRUE(back.has_injector);
  EXPECT_EQ(serialize_run_checkpoint(back), e->blob);
}

TEST(CheckpointCodec, RejectsTruncationGarbageAndVersionSkew) {
  RunCheckpoint c;
  c.tick = 1;
  const std::string bytes = serialize_run_checkpoint(c);
  EXPECT_THROW(deserialize_run_checkpoint(bytes.substr(0, bytes.size() - 1)),
               std::runtime_error);
  EXPECT_THROW(deserialize_run_checkpoint(bytes + "x"), std::runtime_error);
  std::string skewed = bytes;
  skewed[0] = static_cast<char>(skewed[0] + 1);  // version is the first u32
  EXPECT_THROW(deserialize_run_checkpoint(skewed), std::runtime_error);
  EXPECT_THROW(deserialize_run_checkpoint(""), std::runtime_error);
}

// ---- deep-tier eviction ---------------------------------------------------

TEST(CheckpointStoreTier, EvictsOldestPastTheByteBudget) {
  CheckpointStore store;
  store.set_max_deep_bytes(2500);
  const auto entry = [](std::uint64_t digest) {
    CheckpointStore::DeepEntry e;
    e.prefix_digest = digest;
    e.full_digest = digest;
    e.tick = 10;
    e.clean = true;
    e.blob = std::string(1000, 'x');
    return e;
  };
  store.insert_deep(entry(1));
  store.insert_deep(entry(2));
  EXPECT_EQ(store.evictions(), 0u);
  EXPECT_EQ(store.deep_bytes(), 2000u);
  store.insert_deep(entry(3));  // 3000 bytes > budget: entry 1 goes
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(store.deep_count(), 2u);
  EXPECT_EQ(store.deep_bytes(), 2000u);
  store.set_max_deep_bytes(1000);  // shrinking evicts immediately
  EXPECT_EQ(store.evictions(), 2u);
  EXPECT_EQ(store.deep_count(), 1u);
}

// ---- executor strategies --------------------------------------------------

std::vector<RunConfig> sweep_configs() {
  // Checkpoint deliberately NOT set per-config: the executor option must
  // fold it in (effective_config), the way davcamp --checkpoint does.
  std::vector<RunConfig> cfgs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    RunConfig cfg = sensor_variant(SensorFaultModel::kCameraBlackout,
                                   900 + i);
    cfg.checkpoint = {};
    cfgs.push_back(cfg);
  }
  return cfgs;
}

TEST(CheckpointExecutor, InProcessMatchesSerialByteForByte) {
  const auto cfgs = sweep_configs();
  ExecutorOptions o;
  o.jobs = 1;
  o.force_in_process = true;
  o.checkpoint = true;
  CampaignExecutor exec(o);
  const auto results = exec.run_all(cfgs);
  ASSERT_EQ(results.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(results[i]), bytes_of(cfgs[i]))
        << "index " << i;
  }
  // 4 variants of one prefix through one store: 3 deep restores, and the
  // combined hit counter (setup + deep tiers) reflects them.
  EXPECT_GE(exec.stats().checkpoint_hits, 3u);
}

#if DAV_TEST_POSIX

TEST(CheckpointExecutor, PoolMatchesSerialByteForByte) {
  const auto cfgs = sweep_configs();
  ExecutorOptions o;
  o.jobs = 1;  // one worker: every variant lands on the same store
  o.pool = true;
  o.checkpoint = true;
  o.run_timeout_sec = 120.0;
  CampaignExecutor exec(o);
  const auto results = exec.run_all(cfgs);
  ASSERT_EQ(results.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(results[i]), bytes_of(cfgs[i]))
        << "index " << i;
  }
  EXPECT_GE(exec.stats().checkpoint_hits, 3u);
  EXPECT_EQ(exec.stats().checkpoint_evictions, 0u);
}

TEST(CheckpointExecutor, ForkPerRunMatchesSerialByteForByte) {
  const auto cfgs = sweep_configs();
  ExecutorOptions o;
  o.jobs = 2;
  o.pool = false;  // fork-per-run cannot share a store; results unchanged
  o.checkpoint = true;
  o.run_timeout_sec = 120.0;
  CampaignExecutor exec(o);
  const auto results = exec.run_all(cfgs);
  ASSERT_EQ(results.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(results[i]), bytes_of(cfgs[i]))
        << "index " << i;
  }
}

TEST(CheckpointExecutor, DistributedMatchesSerialByteForByte) {
  const std::string sock = ::testing::TempDir() + "/ckpt_dist.sock";
  std::remove(sock.c_str());
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ServeOptions sopts;
    sopts.listen_spec = "unix:" + sock;
    sopts.heartbeat_sec = 0.2;
    ExecutorOptions eopts;
    eopts.jobs = 1;
    eopts.run_timeout_sec = 120.0;
    try {
      serve_campaign(sopts, eopts);  // default fn: the real run_experiment
    } catch (...) {
    }
    ::_exit(0);
  }
  for (int i = 0; i < 200 && ::access(sock.c_str(), F_OK) != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const auto cfgs = sweep_configs();
  ExecutorOptions o;
  o.workers = {"unix:" + sock};
  o.heartbeat_sec = 0.2;
  o.checkpoint = true;  // coordinator folds it into each shipped config
  o.run_timeout_sec = 120.0;
  CampaignExecutor exec(o);
  const auto results = exec.run_all(cfgs);
  ::kill(pid, SIGTERM);
  int status = 0;
  ::waitpid(pid, &status, 0);
  std::remove(sock.c_str());

  ASSERT_EQ(results.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(serialize_run_result(results[i]), bytes_of(cfgs[i]))
        << "index " << i;
  }
  EXPECT_GE(exec.stats().checkpoint_hits, 3u);
}

#endif  // DAV_TEST_POSIX

}  // namespace
}  // namespace dav
