// dav::EnvOptions — the typed façade over every DAV_* environment variable:
// strict parsing with actionable errors, the legacy DAV_SCALE sizing math,
// and the projections the subsystems consume (CampaignScale, ExecutorOptions,
// TraceOptions).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/env_options.h"

namespace dav {
namespace {

/// Scoped setenv: every test leaves the environment exactly as it found it,
/// so tests cannot leak DAV_* state into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* var, const char* value) : var_(var) {
    const char* old = std::getenv(var);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      setenv(var, value, 1);
    } else {
      unsetenv(var);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(var_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(var_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string var_;
  std::string old_;
  bool had_old_ = false;
};

/// Clears every documented DAV_* variable for the test's duration.
class CleanEnv {
 public:
  CleanEnv() {
    for (const auto& d : EnvOptions::docs()) {
      scopes_.push_back(std::make_unique<ScopedEnv>(d.name, nullptr));
    }
  }

 private:
  std::vector<std::unique_ptr<ScopedEnv>> scopes_;
};

TEST(EnvOptions, DefaultsWhenNothingIsSet) {
  CleanEnv clean;
  const EnvOptions o = EnvOptions::from_env();
  EXPECT_DOUBLE_EQ(o.scale, 1.0);
  EXPECT_EQ(o.jobs, 0);
  EXPECT_TRUE(o.pool);
  EXPECT_TRUE(o.warm_cache);
  EXPECT_FALSE(o.checkpoint);
  EXPECT_EQ(o.checkpoint_max_mb, 64u);
  EXPECT_TRUE(o.journal_path.empty());
  EXPECT_DOUBLE_EQ(o.run_timeout_sec, 600.0);
  EXPECT_EQ(o.run_retries, 1);
  EXPECT_DOUBLE_EQ(o.run_cpu_sec, 0.0);
  EXPECT_EQ(o.run_as_mb, 0u);
  EXPECT_TRUE(o.trace_dir.empty());
  EXPECT_EQ(o.trace_capacity, 65536u);
  EXPECT_TRUE(o.workers.empty());
  EXPECT_TRUE(o.serve.empty());
  EXPECT_DOUBLE_EQ(o.heartbeat_sec, 5.0);
  EXPECT_DOUBLE_EQ(o.straggler_sec, 0.0);
  EXPECT_TRUE(o.metrics_path.empty());
  EXPECT_DOUBLE_EQ(o.metrics_interval_sec, 2.0);
  EXPECT_FALSE(o.executor_options().enabled());
}

TEST(EnvOptions, ParsesEveryKnob) {
  CleanEnv clean;
  ScopedEnv e1("DAV_SCALE", "0.5");
  ScopedEnv e2("DAV_JOBS", "4");
  ScopedEnv e3("DAV_POOL", "off");
  ScopedEnv e4("DAV_WARM_CACHE", "no");
  ScopedEnv e5("DAV_JOURNAL", "/tmp/dav.journal");
  ScopedEnv e6("DAV_RUN_TIMEOUT_SEC", "12.5");
  ScopedEnv e7("DAV_RUN_RETRIES", "3");
  ScopedEnv e8("DAV_RUN_CPU_SEC", "30");
  ScopedEnv e9("DAV_RUN_AS_MB", "2048");
  ScopedEnv e10("DAV_TRACE", "/tmp/traces");
  ScopedEnv e11("DAV_TRACE_CAPACITY", "1024");
  ScopedEnv e12("DAV_WORKERS", "host:9000, unix:/tmp/w.sock");
  ScopedEnv e13("DAV_HEARTBEAT_SEC", "0.5");
  ScopedEnv e14("DAV_STRAGGLER_SEC", "30");
  ScopedEnv e15("DAV_METRICS", "/tmp/dav.metrics");
  ScopedEnv e16("DAV_METRICS_INTERVAL_SEC", "0.25");

  const EnvOptions o = EnvOptions::from_env();
  EXPECT_DOUBLE_EQ(o.scale, 0.5);
  EXPECT_EQ(o.jobs, 4);
  EXPECT_FALSE(o.pool);
  EXPECT_FALSE(o.warm_cache);
  EXPECT_EQ(o.journal_path, "/tmp/dav.journal");
  EXPECT_DOUBLE_EQ(o.run_timeout_sec, 12.5);
  EXPECT_EQ(o.run_retries, 3);
  EXPECT_DOUBLE_EQ(o.run_cpu_sec, 30.0);
  EXPECT_EQ(o.run_as_mb, 2048u);
  EXPECT_EQ(o.trace_dir, "/tmp/traces");
  EXPECT_EQ(o.trace_capacity, 1024u);
  ASSERT_EQ(o.workers.size(), 2u);
  EXPECT_EQ(o.workers[0], "host:9000");
  EXPECT_EQ(o.workers[1], "unix:/tmp/w.sock");
  EXPECT_DOUBLE_EQ(o.heartbeat_sec, 0.5);
  EXPECT_DOUBLE_EQ(o.straggler_sec, 30.0);
  EXPECT_EQ(o.metrics_path, "/tmp/dav.metrics");
  EXPECT_DOUBLE_EQ(o.metrics_interval_sec, 0.25);
}

TEST(EnvOptions, ServeAddressParses) {
  CleanEnv clean;
  ScopedEnv e("DAV_SERVE", "unix:/tmp/daemon.sock");
  EXPECT_EQ(EnvOptions::from_env().serve, "unix:/tmp/daemon.sock");
}

TEST(EnvOptions, BooleanSpellings) {
  CleanEnv clean;
  for (const char* yes : {"1", "true", "TRUE", "on", "Yes"}) {
    ScopedEnv e("DAV_POOL", yes);
    EXPECT_TRUE(EnvOptions::from_env().pool) << yes;
  }
  for (const char* no : {"0", "false", "OFF", "no"}) {
    ScopedEnv e("DAV_POOL", no);
    EXPECT_FALSE(EnvOptions::from_env().pool) << no;
  }
}

/// The error for a malformed variable must name the variable and echo the
/// offending value — "actionable" means a user can fix it from the message
/// alone.
void expect_rejects(const char* var, const char* value) {
  CleanEnv clean;
  ScopedEnv e(var, value);
  try {
    EnvOptions::from_env();
    FAIL() << var << "=" << value << " was accepted";
  } catch (const std::invalid_argument& ex) {
    const std::string what = ex.what();
    EXPECT_NE(what.find(var), std::string::npos) << what;
    EXPECT_NE(what.find(value), std::string::npos) << what;
  }
}

TEST(EnvOptions, RejectsMalformedValuesWithActionableErrors) {
  expect_rejects("DAV_JOBS", "abc");
  expect_rejects("DAV_JOBS", "-2");
  expect_rejects("DAV_JOBS", "4x");
  expect_rejects("DAV_SCALE", "0");
  expect_rejects("DAV_SCALE", "-1.5");
  expect_rejects("DAV_SCALE", "fast");
  expect_rejects("DAV_RUN_TIMEOUT_SEC", "-5");
  expect_rejects("DAV_RUN_TIMEOUT_SEC", "soon");
  expect_rejects("DAV_POOL", "maybe");
  expect_rejects("DAV_WARM_CACHE", "2");
  expect_rejects("DAV_CHECKPOINT", "maybe");
  expect_rejects("DAV_CHECKPOINT", "2");
  expect_rejects("DAV_CHECKPOINT_MAX_MB", "-1");
  expect_rejects("DAV_CHECKPOINT_MAX_MB", "lots");
  expect_rejects("DAV_CHECKPOINT_MAX_MB", "64mb");
  expect_rejects("DAV_RUN_RETRIES", "-1");
  expect_rejects("DAV_RUN_CPU_SEC", "-0.1");
  expect_rejects("DAV_RUN_AS_MB", "lots");
  expect_rejects("DAV_TRACE_CAPACITY", "0");
  expect_rejects("DAV_WORKERS", "nohost");
  expect_rejects("DAV_WORKERS", "a:1,,b:2");
  expect_rejects("DAV_WORKERS", "host:0");
  expect_rejects("DAV_SERVE", "not-an-endpoint");
  expect_rejects("DAV_HEARTBEAT_SEC", "0");
  expect_rejects("DAV_HEARTBEAT_SEC", "-1");
  expect_rejects("DAV_HEARTBEAT_SEC", "often");
  expect_rejects("DAV_STRAGGLER_SEC", "-2");
  expect_rejects("DAV_STRAGGLER_SEC", "late");
  expect_rejects("DAV_METRICS_INTERVAL_SEC", "0");
  expect_rejects("DAV_METRICS_INTERVAL_SEC", "-1");
  expect_rejects("DAV_METRICS_INTERVAL_SEC", "slow");
}

TEST(EnvOptions, ValidateRejectsNonsenseOnHandBuiltValues) {
  EnvOptions o;
  o.scale = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = EnvOptions::defaults();
  o.jobs = -1;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = EnvOptions::defaults();
  o.trace_capacity = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = EnvOptions::defaults();
  o.workers = {"not an endpoint"};
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = EnvOptions::defaults();
  o.heartbeat_sec = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = EnvOptions::defaults();
  o.straggler_sec = -1.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = EnvOptions::defaults();
  o.metrics_interval_sec = 0.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  EXPECT_NO_THROW(EnvOptions::defaults().validate());
}

TEST(EnvOptions, CampaignScaleReproducesLegacyMath) {
  // Same floors and rounding as the historic DAV_SCALE handling: existing
  // campaigns must reproduce bit-for-bit.
  EnvOptions o;
  o.scale = 0.5;
  CampaignScale s = o.campaign_scale();
  EXPECT_EQ(s.transient_runs, 20);
  EXPECT_EQ(s.permanent_repeats, 1);
  EXPECT_EQ(s.golden_runs, 5);
  EXPECT_EQ(s.training_runs_per_scenario, 1);

  o.scale = 0.01;  // floors bite
  s = o.campaign_scale();
  EXPECT_EQ(s.transient_runs, 4);
  EXPECT_EQ(s.permanent_repeats, 1);
  EXPECT_EQ(s.golden_runs, 3);
  EXPECT_EQ(s.training_runs_per_scenario, 1);

  o.scale = 1.0;
  s = o.campaign_scale();
  EXPECT_EQ(s.transient_runs, CampaignScale{}.transient_runs);
  EXPECT_EQ(s.golden_runs, CampaignScale{}.golden_runs);
}

TEST(EnvOptions, ExecutorAndTraceProjections) {
  EnvOptions o;
  o.jobs = 3;
  o.pool = false;
  o.warm_cache = false;
  o.journal_path = "/tmp/j";
  o.run_timeout_sec = 42.0;
  o.run_retries = 2;
  o.run_cpu_sec = 9.0;
  o.run_as_mb = 128;
  o.trace_dir = "/tmp/t";
  o.trace_capacity = 99;
  o.workers = {"unix:/tmp/w.sock"};
  o.heartbeat_sec = 0.25;
  o.straggler_sec = 15.0;
  o.metrics_path = "/tmp/m.metrics";
  o.metrics_interval_sec = 0.5;

  const ExecutorOptions x = o.executor_options();
  EXPECT_EQ(x.jobs, 3);
  EXPECT_FALSE(x.pool);
  EXPECT_FALSE(x.warm_cache);
  EXPECT_EQ(x.journal_path, "/tmp/j");
  EXPECT_DOUBLE_EQ(x.run_timeout_sec, 42.0);
  EXPECT_EQ(x.max_retries, 2);
  EXPECT_DOUBLE_EQ(x.cpu_limit_sec, 9.0);
  EXPECT_EQ(x.address_space_mb, 128u);
  ASSERT_EQ(x.workers.size(), 1u);
  EXPECT_EQ(x.workers[0], "unix:/tmp/w.sock");
  EXPECT_DOUBLE_EQ(x.heartbeat_sec, 0.25);
  EXPECT_DOUBLE_EQ(x.straggler_sec, 15.0);
  EXPECT_EQ(x.metrics_path, "/tmp/m.metrics");
  EXPECT_DOUBLE_EQ(x.metrics_interval_sec, 0.5);
  EXPECT_TRUE(x.enabled());

  const obs::TraceOptions t = o.trace_options();
  EXPECT_EQ(t.dir, "/tmp/t");
  EXPECT_EQ(t.capacity, 99u);
}

TEST(EnvOptions, ParsesCheckpointKnobsIntoExecutorOptions) {
  CleanEnv clean;
  ScopedEnv e1("DAV_CHECKPOINT", "1");
  ScopedEnv e2("DAV_CHECKPOINT_MAX_MB", "128");
  ScopedEnv e3("DAV_JOBS", "2");
  const EnvOptions o = EnvOptions::from_env();
  EXPECT_TRUE(o.checkpoint);
  EXPECT_EQ(o.checkpoint_max_mb, 128u);
  const ExecutorOptions eo = o.executor_options();
  EXPECT_TRUE(eo.checkpoint);
  EXPECT_EQ(eo.checkpoint_max_mb, 128u);
}

TEST(EnvOptions, ParsesSensorFaultKnobs) {
  CleanEnv clean;
  ScopedEnv faults("DAV_SENSOR_FAULTS", "camera-blackout,lidar-dropout");
  ScopedEnv onset("DAV_SENSOR_ONSET_TICK", "55");
  ScopedEnv dur("DAV_SENSOR_DURATION_TICKS", "200");
  const EnvOptions env = EnvOptions::from_env();
  ASSERT_EQ(env.sensor_faults.size(), 2u);
  EXPECT_EQ(env.sensor_faults[0], SensorFaultModel::kCameraBlackout);
  EXPECT_EQ(env.sensor_faults[1], SensorFaultModel::kLidarDropout);
  EXPECT_EQ(env.sensor_onset_tick, 55);
  EXPECT_EQ(env.sensor_duration_ticks, 200);
}

TEST(EnvOptions, SensorFaultsAllSelectsEveryModel) {
  CleanEnv clean;
  ScopedEnv faults("DAV_SENSOR_FAULTS", "all");
  const EnvOptions env = EnvOptions::from_env();
  EXPECT_EQ(env.sensor_faults.size(), all_sensor_fault_models().size());
}

TEST(EnvOptions, RejectsMalformedSensorKnobs) {
  CleanEnv clean;
  {
    ScopedEnv faults("DAV_SENSOR_FAULTS", "camera-blackout,bogus");
    EXPECT_THROW(EnvOptions::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv faults("DAV_SENSOR_FAULTS", "camera-blackout,");
    EXPECT_THROW(EnvOptions::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv onset("DAV_SENSOR_ONSET_TICK", "-3");
    EXPECT_THROW(EnvOptions::from_env(), std::invalid_argument);
  }
  {
    ScopedEnv dur("DAV_SENSOR_DURATION_TICKS", "0");
    EXPECT_THROW(EnvOptions::from_env(), std::invalid_argument);
  }
}

TEST(EnvOptions, DocsCoverEveryParsedVariable) {
  // The docs table drives the README and davcamp --env-help; every variable
  // the parser understands must appear exactly once.
  const std::vector<const char*> expected = {
      "DAV_SCALE",       "DAV_JOBS",          "DAV_POOL",
      "DAV_WARM_CACHE",  "DAV_CHECKPOINT",    "DAV_CHECKPOINT_MAX_MB",
      "DAV_JOURNAL",     "DAV_RUN_TIMEOUT_SEC",
      "DAV_RUN_RETRIES", "DAV_RUN_CPU_SEC",   "DAV_RUN_AS_MB",
      "DAV_TRACE",       "DAV_TRACE_CAPACITY", "DAV_WORKERS",
      "DAV_SERVE",       "DAV_HEARTBEAT_SEC", "DAV_STRAGGLER_SEC",
      "DAV_METRICS",     "DAV_METRICS_INTERVAL_SEC",
      "DAV_SENSOR_FAULTS", "DAV_SENSOR_ONSET_TICK",
      "DAV_SENSOR_DURATION_TICKS"};
  const auto& docs = EnvOptions::docs();
  ASSERT_EQ(docs.size(), expected.size());
  for (const char* var : expected) {
    int found = 0;
    for (const auto& d : docs) {
      if (std::string(d.name) == var) ++found;
    }
    EXPECT_EQ(found, 1) << var;
  }
  for (const auto& d : docs) {
    EXPECT_NE(d.summary[0], '\0') << d.name << " has no summary";
    EXPECT_NE(d.fallback[0], '\0') << d.name << " has no default";
  }
}

TEST(EnvOptions, LegacyFromEnvSpellingsDelegate) {
  CleanEnv clean;
  ScopedEnv e("DAV_SCALE", "0.5");
  // CampaignScale::from_env is now a thin wrapper over the façade.
  const CampaignScale s = CampaignScale::from_env();
  EXPECT_EQ(s.transient_runs, 20);
  EXPECT_EQ(s.golden_runs, 5);
}

}  // namespace
}  // namespace dav
