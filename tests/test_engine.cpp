#include <gtest/gtest.h>

#include <cmath>

#include "fi/engine.h"

namespace dav {
namespace {

FaultPlan transient_gpu(std::uint64_t index, int bit = 0) {
  FaultPlan p;
  p.kind = FaultModelKind::kTransient;
  p.domain = FaultDomain::kGpu;
  p.target_dyn_index = index;
  p.bit = bit;
  return p;
}

FaultPlan permanent_gpu(GpuOpcode op, int bit = 0) {
  FaultPlan p;
  p.kind = FaultModelKind::kPermanent;
  p.domain = FaultDomain::kGpu;
  p.target_opcode = static_cast<int>(op);
  p.bit = bit;
  return p;
}

/// Model where nothing ever crashes or hangs: corruptions propagate as SDCs.
CrashHangModel never_lethal() {
  CrashHangModel m;
  m.p_crash_data = m.p_hang_data = 0.0;
  m.p_crash_mem = m.p_hang_mem = 0.0;
  m.p_crash_ctrl = m.p_hang_ctrl = 0.0;
  return m;
}

CrashHangModel always_crash() {
  CrashHangModel m = never_lethal();
  m.p_crash_data = m.p_crash_mem = m.p_crash_ctrl = 1.0;
  return m;
}

CrashHangModel always_hang() {
  CrashHangModel m = never_lethal();
  m.p_hang_data = m.p_hang_mem = m.p_hang_ctrl = 1.0;
  return m;
}

TEST(FaultPlanMask, InRangeBitsSetExactlyOneBit) {
  FaultPlan plan;
  plan.bit = 0;
  EXPECT_EQ(plan.mask(), 1u);
  plan.bit = 31;
  EXPECT_EQ(plan.mask(), 0x80000000u);
}

TEST(FaultPlanMask, OutOfRangeBitsYieldEmptyMask) {
  // Regression: `1u << bit` with bit >= 32 (or negative) is undefined
  // behavior; out-of-range plans must degrade to a no-op corruption mask.
  FaultPlan plan;
  plan.bit = 32;
  EXPECT_EQ(plan.mask(), 0u);
  plan.bit = -1;
  EXPECT_EQ(plan.mask(), 0u);
}

TEST(Engine, CleanExecIsIdentityAndCounts) {
  GpuEngine eng;
  eng.configure({}, 0);
  EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFAdd, 3.5f), 3.5f);
  EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFMul, -2.0f), -2.0f);
  EXPECT_EQ(eng.total_dyn_instructions(), 2u);
  EXPECT_EQ(eng.op_count(GpuOpcode::kFAdd), 1u);
  EXPECT_EQ(eng.op_count(GpuOpcode::kFMul), 1u);
  EXPECT_FALSE(eng.fault_activated());
}

TEST(Engine, BulkCountsManyAtOnce) {
  GpuEngine eng;
  eng.configure({}, 0);
  eng.bulk(GpuOpcode::kLdg, 1000);
  eng.mark(GpuOpcode::kBra);
  EXPECT_EQ(eng.total_dyn_instructions(), 1001u);
  EXPECT_EQ(eng.op_count(GpuOpcode::kLdg), 1000u);
  EXPECT_EQ(eng.op_count(GpuOpcode::kBra), 1u);
}

TEST(Engine, ResetCountsClears) {
  GpuEngine eng;
  eng.configure({}, 0);
  eng.exec(GpuOpcode::kFAdd, 1.0f);
  eng.reset_counts();
  EXPECT_EQ(eng.total_dyn_instructions(), 0u);
  EXPECT_EQ(eng.op_count(GpuOpcode::kFAdd), 0u);
}

TEST(Engine, TransientCorruptsExactlyTargetIndex) {
  GpuEngine eng;
  eng.configure(transient_gpu(/*index=*/2, /*bit=*/31), 1, never_lethal());
  EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFAdd, 1.0f), 1.0f);   // index 0
  EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFAdd, 1.0f), 1.0f);   // index 1
  EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFAdd, 1.0f), -1.0f);  // index 2: sign
  EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFAdd, 1.0f), 1.0f);   // index 3
  EXPECT_TRUE(eng.fault_activated());
  EXPECT_EQ(eng.corruption_count(), 1u);
}

TEST(Engine, TransientNotActivatedIfIndexNeverReached) {
  GpuEngine eng;
  eng.configure(transient_gpu(100), 1, never_lethal());
  for (int i = 0; i < 50; ++i) eng.exec(GpuOpcode::kFAdd, 1.0f);
  EXPECT_FALSE(eng.fault_activated());
  EXPECT_EQ(eng.corruption_count(), 0u);
}

TEST(Engine, TransientInBulkRangeActivates) {
  GpuEngine eng;
  eng.configure(transient_gpu(500), 1, never_lethal());
  eng.bulk(GpuOpcode::kLdg, 1000);
  EXPECT_TRUE(eng.fault_activated());
}

TEST(Engine, TransientOutsideBulkRangeDoesNot) {
  GpuEngine eng;
  eng.configure(transient_gpu(1500), 1, never_lethal());
  eng.bulk(GpuOpcode::kLdg, 1000);
  EXPECT_FALSE(eng.fault_activated());
}

TEST(Engine, PermanentCorruptsEveryInstanceOfOpcode) {
  GpuEngine eng;
  eng.configure(permanent_gpu(GpuOpcode::kFMul, /*bit=*/31), 1,
                never_lethal());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFMul, 2.0f), -2.0f);
  }
  // Other opcodes untouched.
  EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFAdd, 2.0f), 2.0f);
  EXPECT_EQ(eng.corruption_count(), 10u);
}

TEST(Engine, CrashModelThrowsCrashError) {
  GpuEngine eng;
  eng.configure(transient_gpu(0), 1, always_crash());
  EXPECT_THROW(eng.exec(GpuOpcode::kFAdd, 1.0f), CrashError);
  EXPECT_TRUE(eng.fault_activated());
}

TEST(Engine, HangModelThrowsHangError) {
  GpuEngine eng;
  eng.configure(transient_gpu(0), 1, always_hang());
  EXPECT_THROW(eng.exec(GpuOpcode::kFAdd, 1.0f), HangError);
}

TEST(Engine, PermanentLethalityDrawnOncePerRun) {
  GpuEngine eng;
  eng.configure(permanent_gpu(GpuOpcode::kLdg), 1, always_crash());
  EXPECT_THROW(eng.bulk(GpuOpcode::kLdg, 10), CrashError);
}

TEST(Engine, WrongDomainPlanIsIgnored) {
  GpuEngine eng;
  FaultPlan p = transient_gpu(0, 31);
  p.domain = FaultDomain::kCpu;
  eng.configure(p, 1, never_lethal());
  EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFAdd, 1.0f), 1.0f);
  EXPECT_FALSE(eng.fault_activated());
}

TEST(Engine, ReconfigureDisarms) {
  GpuEngine eng;
  eng.configure(permanent_gpu(GpuOpcode::kFAdd, 31), 1, never_lethal());
  EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFAdd, 1.0f), -1.0f);
  eng.configure({}, 0);
  EXPECT_FLOAT_EQ(eng.exec(GpuOpcode::kFAdd, 1.0f), 1.0f);
  EXPECT_FALSE(eng.fault_activated());
}

TEST(Engine, MaskMatchesBitPosition) {
  for (int bit : {0, 7, 23, 31}) {
    GpuEngine eng;
    eng.configure(permanent_gpu(GpuOpcode::kFAdd, bit), 1, never_lethal());
    const float in = 1.5f;
    const float out = eng.exec(GpuOpcode::kFAdd, in);
    EXPECT_EQ(float_bits(out) ^ float_bits(in), 1u << bit);
  }
}

TEST(CpuEngine, SameMechanicsDifferentDomain) {
  CpuEngine eng;
  FaultPlan p;
  p.kind = FaultModelKind::kPermanent;
  p.domain = FaultDomain::kCpu;
  p.target_opcode = static_cast<int>(CpuOpcode::kAdd);
  p.bit = 31;
  eng.configure(p, 1, never_lethal());
  EXPECT_FLOAT_EQ(eng.exec(CpuOpcode::kAdd, 4.0f), -4.0f);
  EXPECT_FLOAT_EQ(eng.exec(CpuOpcode::kMul, 4.0f), 4.0f);
}

class ManifestationProbability
    : public ::testing::TestWithParam<double> {};

TEST_P(ManifestationProbability, CrashRateMatchesConfiguredProbability) {
  const double p_crash = GetParam();
  int crashes = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    GpuEngine eng;
    CrashHangModel m = never_lethal();
    m.p_crash_data = p_crash;
    eng.configure(transient_gpu(0), static_cast<std::uint64_t>(i) + 1, m);
    try {
      eng.exec(GpuOpcode::kFAdd, 1.0f);
    } catch (const CrashError&) {
      ++crashes;
    }
  }
  EXPECT_NEAR(static_cast<double>(crashes) / n, p_crash, 0.04);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, ManifestationProbability,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace dav
