#include <gtest/gtest.h>

#include <algorithm>

#include "util/text_report.h"

namespace dav {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"a", "bee"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("bee"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
  // 4 lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"x", "y", "z"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(Heatmap, ContainsLabelsAndValues) {
  const std::string out = render_heatmap("title", {"r1", "r2"}, {"c1", "c2"},
                                         {{0.5, 0.25}, {1.0, 0.0}});
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("r1"), std::string::npos);
  EXPECT_NE(out.find("c2"), std::string::npos);
  EXPECT_NE(out.find("0.25"), std::string::npos);
}

TEST(RenderBox, MarksMedianAndExtremes) {
  BoxStats b{0.0, 0.25, 0.5, 0.75, 1.0, 5};
  const std::string line = render_box(b, 0.0, 1.0, 41);
  EXPECT_EQ(line.size(), 41u);
  EXPECT_EQ(line.front(), '|');
  EXPECT_EQ(line.back(), '|');
  EXPECT_EQ(line[20], '#');
}

TEST(RenderBox, DegenerateRangeDoesNotCrash) {
  BoxStats b{1.0, 1.0, 1.0, 1.0, 1.0, 1};
  EXPECT_NO_THROW(render_box(b, 1.0, 1.0, 20));
}

TEST(RenderCdf, CountsCumulative) {
  const std::string out = render_cdf("cdf", {1.0, 2.0, 3.0}, "x", 2);
  EXPECT_NE(out.find("cdf"), std::string::npos);
  EXPECT_NE(out.find("n=3"), std::string::npos);
}

TEST(RenderCdf, EmptyInput) {
  const std::string out = render_cdf("cdf", {}, "x");
  EXPECT_NE(out.find("no samples"), std::string::npos);
}

}  // namespace
}  // namespace dav
