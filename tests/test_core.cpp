#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/distributor.h"
#include "core/divergence.h"
#include "core/threshold_lut.h"
#include "util/rng.h"

namespace dav {
namespace {

// ---------------------------------------------------------------------------
// SensorDataDistributor
// ---------------------------------------------------------------------------

TEST(Distributor, SingleModeAlwaysAgent0) {
  SensorDataDistributor d(AgentMode::kSingle);
  EXPECT_EQ(d.num_agents(), 1);
  EXPECT_EQ(d.agent_period(), 1);
  for (int step = 0; step < 5; ++step) {
    const auto disp = d.dispatch(step);
    EXPECT_TRUE(disp.to_agent0);
    EXPECT_FALSE(disp.to_agent1);
    EXPECT_EQ(disp.acting_agent, 0);
  }
}

TEST(Distributor, RoundRobinAlternates) {
  SensorDataDistributor d(AgentMode::kRoundRobin);
  EXPECT_EQ(d.num_agents(), 2);
  EXPECT_EQ(d.agent_period(), 2);
  for (int step = 0; step < 10; ++step) {
    const auto disp = d.dispatch(step);
    if (step % 2 == 0) {
      EXPECT_TRUE(disp.to_agent0);
      EXPECT_FALSE(disp.to_agent1);
      EXPECT_EQ(disp.acting_agent, 0);
    } else {
      EXPECT_FALSE(disp.to_agent0);
      EXPECT_TRUE(disp.to_agent1);
      EXPECT_EQ(disp.acting_agent, 1);
    }
  }
}

TEST(Distributor, DuplicateSendsToBothPrimaryDrives) {
  SensorDataDistributor d(AgentMode::kDuplicate);
  const auto disp = d.dispatch(3);
  EXPECT_TRUE(disp.to_agent0);
  EXPECT_TRUE(disp.to_agent1);
  EXPECT_EQ(disp.acting_agent, 0);
  EXPECT_EQ(d.agent_period(), 1);
}

TEST(Distributor, ModeNames) {
  EXPECT_EQ(to_string(AgentMode::kSingle), "single");
  EXPECT_EQ(to_string(AgentMode::kRoundRobin), "diverseav");
  EXPECT_EQ(to_string(AgentMode::kDuplicate), "fd");
}

// ---------------------------------------------------------------------------
// Divergence signal
// ---------------------------------------------------------------------------

TEST(AbsDelta, PerChannelAbsolute) {
  const ActuationDelta d =
      abs_delta({0.5, 0.0, -0.2}, {0.2, 0.3, 0.3});
  EXPECT_DOUBLE_EQ(d.throttle, 0.3);
  EXPECT_DOUBLE_EQ(d.brake, 0.3);
  EXPECT_DOUBLE_EQ(d.steer, 0.5);
}

TEST(DivergenceSignalTest, SmoothsPerChannel) {
  DivergenceSignal sig(2);
  sig.push({1.0, 0.0, 0.5});
  EXPECT_FALSE(sig.full());
  sig.push({0.0, 1.0, 0.5});
  EXPECT_TRUE(sig.full());
  const ActuationDelta s = sig.smoothed();
  EXPECT_DOUBLE_EQ(s.throttle, 0.5);
  EXPECT_DOUBLE_EQ(s.brake, 0.5);
  EXPECT_DOUBLE_EQ(s.steer, 0.5);
  sig.clear();
  EXPECT_FALSE(sig.full());
}

// ---------------------------------------------------------------------------
// Threshold LUT
// ---------------------------------------------------------------------------

VehicleState state_at(double v, double a = 0.0, double omega = 0.0,
                      double alpha = 0.0) {
  VehicleState s;
  s.v = v;
  s.a = a;
  s.omega = omega;
  s.alpha = alpha;
  return s;
}

TEST(BinAxisTest, IndexClampsAndBins) {
  BinAxis axis{0.0, 10.0, 5};
  EXPECT_EQ(axis.index(-1.0), 0);
  EXPECT_EQ(axis.index(0.0), 0);
  EXPECT_EQ(axis.index(3.9), 1);
  EXPECT_EQ(axis.index(9.99), 4);
  EXPECT_EQ(axis.index(25.0), 4);
}

TEST(ThresholdLutTest, FloorsApplyWhenUntrained) {
  LutConfig cfg;
  ThresholdLut lut(cfg);
  const ActuationDelta th = lut.thresholds(state_at(10.0));
  EXPECT_DOUBLE_EQ(th.throttle, cfg.floor_throttle);
  EXPECT_DOUBLE_EQ(th.brake, cfg.floor_brake);
  EXPECT_DOUBLE_EQ(th.steer, cfg.floor_steer);
}

TEST(ThresholdLutTest, TrainedBinUsesMarginTimesMax) {
  LutConfig cfg;
  ThresholdLut lut(cfg);
  lut.observe(state_at(10.0), {0.5, 0.4, 0.3});
  lut.observe(state_at(10.0), {0.3, 0.6, 0.2});
  const ActuationDelta th = lut.thresholds(state_at(10.0));
  EXPECT_DOUBLE_EQ(th.throttle, cfg.margin * 0.5);
  EXPECT_DOUBLE_EQ(th.brake, cfg.margin * 0.6);
  EXPECT_DOUBLE_EQ(th.steer, cfg.margin * 0.3);
  EXPECT_EQ(lut.observations(), 2u);
}

TEST(ThresholdLutTest, UnseenBinFallsBackToGlobalMax) {
  LutConfig cfg;
  ThresholdLut lut(cfg);
  lut.observe(state_at(3.0), {0.5, 0.4, 0.3});
  // Far away bin (v = 20) never trained: global fallback.
  const ActuationDelta th = lut.thresholds(state_at(20.0));
  EXPECT_DOUBLE_EQ(th.throttle, cfg.margin * 0.5);
}

TEST(ThresholdLutTest, SmearingCoversNeighborBins) {
  LutConfig cfg;
  ThresholdLut lut(cfg);
  lut.observe(state_at(10.0, 0.0), {0.5, 0.0, 0.0});
  // A state one accel-bin away is covered by smearing with the same max.
  const double bin_width = (cfg.accel.hi - cfg.accel.lo) / cfg.accel.bins;
  const ActuationDelta th = lut.thresholds(state_at(10.0, bin_width));
  EXPECT_DOUBLE_EQ(th.throttle, cfg.margin * 0.5);
  EXPECT_GT(lut.trained_bins(), 9u);  // 3x3 (v,a) + 3x3 steer bins
}

TEST(ThresholdLutTest, SteerIndexedByYawAxes) {
  LutConfig cfg;
  ThresholdLut lut(cfg);
  lut.observe(state_at(10.0, 0.0, 0.4, 1.0), {0.0, 0.0, 0.5});
  // Same yaw state, different speed: steer threshold still applies.
  const ActuationDelta th = lut.thresholds(state_at(3.0, -2.0, 0.4, 1.0));
  EXPECT_DOUBLE_EQ(th.steer, cfg.margin * 0.5);
}

// ---------------------------------------------------------------------------
// Error detector
// ---------------------------------------------------------------------------

ThresholdLut trained_lut() {
  ThresholdLut lut;
  for (double v = 0.0; v < 22.0; v += 1.0) {
    for (double a = -7.0; a < 4.0; a += 1.0) {
      VehicleState s = state_at(v, a, 0.0, 0.0);
      lut.observe(s, {0.1, 0.1, 0.1});
    }
  }
  return lut;
}

StepObservation obs_at(double t, double v, const ActuationDelta& d) {
  return {t, state_at(v), d};
}

TEST(Detector, NoAlarmBelowThreshold) {
  const ThresholdLut lut = trained_lut();
  ErrorDetector det(lut, {});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(det.observe(obs_at(i * 0.05, 10.0, {0.05, 0.05, 0.05})));
  }
  EXPECT_FALSE(det.alarmed());
}

TEST(Detector, AlarmsOnSustainedExceedance) {
  const ThresholdLut lut = trained_lut();
  DetectorConfig cfg;
  ErrorDetector det(lut, cfg);
  bool alarmed = false;
  for (int i = 0; i < 30 && !alarmed; ++i) {
    alarmed = det.observe(obs_at(i * 0.05, 10.0, {0.9, 0.0, 0.0}));
  }
  EXPECT_TRUE(alarmed);
  EXPECT_GE(det.first_alarm_time(), 0.0);
}

TEST(Detector, DebounceSuppressesSingleBlip) {
  const ThresholdLut lut = trained_lut();
  DetectorConfig cfg;
  cfg.rw = 1;
  cfg.debounce = 3;
  ErrorDetector det(lut, cfg);
  det.observe(obs_at(0.0, 10.0, {0.9, 0.0, 0.0}));  // 1 exceedance
  det.observe(obs_at(0.1, 10.0, {0.0, 0.0, 0.0}));  // streak broken
  det.observe(obs_at(0.2, 10.0, {0.9, 0.0, 0.0}));
  det.observe(obs_at(0.3, 10.0, {0.0, 0.0, 0.0}));
  EXPECT_FALSE(det.alarmed());
}

TEST(Detector, AlarmTimeIsStreakStart) {
  const ThresholdLut lut = trained_lut();
  DetectorConfig cfg;
  cfg.rw = 1;
  cfg.debounce = 3;
  ErrorDetector det(lut, cfg);
  det.observe(obs_at(0.0, 10.0, {0.0, 0.0, 0.0}));
  det.observe(obs_at(1.0, 10.0, {0.9, 0.0, 0.0}));
  det.observe(obs_at(2.0, 10.0, {0.9, 0.0, 0.0}));
  det.observe(obs_at(3.0, 10.0, {0.9, 0.0, 0.0}));
  EXPECT_TRUE(det.alarmed());
  EXPECT_DOUBLE_EQ(det.first_alarm_time(), 1.0);
}

TEST(Detector, LowSpeedGateSkipsEvaluation) {
  const ThresholdLut lut = trained_lut();
  ErrorDetector det(lut, {});
  for (int i = 0; i < 50; ++i) {
    det.observe(obs_at(i * 0.05, 0.4, {0.9, 0.9, 0.9}));  // crawling
  }
  EXPECT_FALSE(det.alarmed());
}

TEST(Detector, AlarmLatches) {
  const ThresholdLut lut = trained_lut();
  ErrorDetector det(lut, {});
  for (int i = 0; i < 30; ++i) {
    det.observe(obs_at(i * 0.05, 10.0, {0.9, 0.0, 0.0}));
  }
  ASSERT_TRUE(det.alarmed());
  const double t = det.first_alarm_time();
  det.observe(obs_at(99.0, 10.0, {0.0, 0.0, 0.0}));
  EXPECT_TRUE(det.alarmed());
  EXPECT_DOUBLE_EQ(det.first_alarm_time(), t);
}

TEST(Detector, ResetClears) {
  const ThresholdLut lut = trained_lut();
  ErrorDetector det(lut, {});
  for (int i = 0; i < 30; ++i) {
    det.observe(obs_at(i * 0.05, 10.0, {0.9, 0.0, 0.0}));
  }
  det.reset();
  EXPECT_FALSE(det.alarmed());
  EXPECT_LT(det.first_alarm_time(), 0.0);
}

TEST(ReplayDetector, MatchesOnlineDetector) {
  const ThresholdLut lut = trained_lut();
  std::vector<StepObservation> trace;
  for (int i = 0; i < 40; ++i) {
    const double mag = i >= 20 ? 0.9 : 0.02;
    trace.push_back(obs_at(i * 0.05, 10.0, {mag, 0.0, 0.0}));
  }
  DetectorConfig cfg;
  const ReplayResult replay = replay_detector(trace, lut, cfg);
  ErrorDetector online(lut, cfg);
  for (const auto& o : trace) online.observe(o);
  EXPECT_EQ(replay.alarmed, online.alarmed());
  EXPECT_DOUBLE_EQ(replay.alarm_time, online.first_alarm_time());
  EXPECT_TRUE(replay.alarmed);
}

TEST(TrainLut, UsesSameSmoothingAsRuntime) {
  std::vector<std::vector<StepObservation>> runs(1);
  // Alternating spikes: rw=4 smooths them to 0.25 average.
  for (int i = 0; i < 40; ++i) {
    runs[0].push_back(obs_at(i * 0.05, 10.0,
                             {(i % 4 == 0) ? 1.0 : 0.0, 0.0, 0.0}));
  }
  const ThresholdLut lut = train_lut(runs, /*rw=*/4);
  const ActuationDelta th = lut.thresholds(state_at(10.0));
  // Max smoothed value is 0.25 (one spike per window) -> margin * 0.25.
  EXPECT_NEAR(th.throttle, LutConfig{}.margin * 0.25, 1e-9);
}

TEST(TrainLut, SkipsCrawlObservations) {
  std::vector<std::vector<StepObservation>> runs(1);
  for (int i = 0; i < 20; ++i) {
    runs[0].push_back(obs_at(i * 0.05, 0.3, {1.0, 1.0, 1.0}));
  }
  const ThresholdLut lut = train_lut(runs, 3);
  EXPECT_EQ(lut.observations(), 0u);
}

/// Property: detector never alarms on the data it was trained on.
class SelfConsistency : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SelfConsistency, TrainedTraceDoesNotAlarm) {
  const std::size_t rw = GetParam();
  std::vector<std::vector<StepObservation>> runs(1);
  Rng rng(42);
  for (int i = 0; i < 300; ++i) {
    runs[0].push_back(obs_at(i * 0.05, 5.0 + 5.0 * rng.uniform(),
                             {0.3 * rng.uniform(), 0.3 * rng.uniform(),
                              0.2 * rng.uniform()}));
  }
  const ThresholdLut lut = train_lut(runs, rw);
  DetectorConfig cfg;
  cfg.rw = rw;
  EXPECT_FALSE(replay_detector(runs[0], lut, cfg).alarmed);
}

INSTANTIATE_TEST_SUITE_P(Windows, SelfConsistency,
                         ::testing::Values(1u, 3u, 5u, 10u, 20u, 40u));

}  // namespace
}  // namespace dav
