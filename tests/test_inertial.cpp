#include <gtest/gtest.h>

#include <cmath>

#include "sensors/inertial.h"
#include "sim/scenario.h"

namespace dav {
namespace {

TEST(GpsImu, TracksStateWithBoundedNoise) {
  VehicleState ego;
  ego.pose.pos = {100.0, -50.0};
  ego.pose.yaw = 0.3;
  ego.v = 12.0;
  ego.a = -1.0;
  ego.omega = 0.1;
  GpsImuModel model;
  Rng rng(5);
  double dx = 0.0;
  for (int i = 0; i < 500; ++i) {
    const GpsImuSample s = sample_gps_imu(ego, model, rng);
    dx += s.gps_x - 100.0;
    EXPECT_NEAR(s.gps_x, 100.0, model.gps_sigma * 6);
    EXPECT_NEAR(s.speed, 12.0, model.speed_sigma * 6);
    EXPECT_NEAR(s.yaw, 0.3, model.yaw_sigma * 6);
    EXPECT_GE(s.speed, 0.0f);
  }
  EXPECT_NEAR(dx / 500.0, 0.0, 0.05);  // unbiased
}

TEST(GpsImu, SpeedNeverNegative) {
  VehicleState ego;  // v = 0
  GpsImuModel model;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(sample_gps_imu(ego, model, rng).speed, 0.0f);
  }
}

TEST(GpsImu, AsArrayHasSixChannels) {
  VehicleState ego;
  GpsImuModel model;
  Rng rng(1);
  const auto arr = sample_gps_imu(ego, model, rng).as_array();
  EXPECT_EQ(arr.size(), 6u);
}

TEST(Lidar, BeamCountAndRangePositive) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  LidarModel model;
  Rng rng(3);
  const auto ranges = sample_lidar(world, model, rng);
  EXPECT_EQ(ranges.size(), static_cast<std::size_t>(model.beams));
  for (float r : ranges) EXPECT_GE(r, 0.0f);
}

TEST(Lidar, ForwardBeamHitsLeadVehicle) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  LidarModel model;
  model.range_sigma = 0.0;
  Rng rng(3);
  const auto ranges = sample_lidar(world, model, rng);
  // Beam 0 points along the ego heading, straight at the lead vehicle whose
  // rear face is 25 - 2.25 m ahead of the ego center.
  EXPECT_NEAR(ranges[0], 25.0 - 2.25, 0.3);
}

TEST(Lidar, MissedBeamsNearMaxRangeButNoisy) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  LidarModel model;
  Rng rng(3);
  const auto ranges = sample_lidar(world, model, rng);
  // Rear beam misses everything.
  const float rear = ranges[static_cast<std::size_t>(model.beams / 2)];
  EXPECT_NEAR(rear, model.max_range, 1.0);
  EXPECT_NE(rear, static_cast<float>(model.max_range));  // no exact clamp
}

TEST(Lidar, SideBeamSeesAdjacentVehicle) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  IdmParams idm;
  sc.npcs.emplace_back(1, sc.ego_start_s, 3.5, 10.0, idm);  // directly left
  World world(std::move(sc));
  LidarModel model;
  model.range_sigma = 0.0;
  Rng rng(3);
  const auto ranges = sample_lidar(world, model, rng);
  const auto left_beam = static_cast<std::size_t>(model.beams / 4);
  EXPECT_NEAR(ranges[left_beam], 3.5 - 1.0, 0.3);  // lateral gap - half width
}

}  // namespace
}  // namespace dav
