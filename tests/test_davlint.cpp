// End-to-end tests for tools/davlint: every rule gets a positive-hit
// fixture, a suppressed-hit fixture and a clean fixture, written to a temp
// directory and scanned by the real binary (DAVLINT_BIN, injected by CMake).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef DAVLINT_BIN
#error "DAVLINT_BIN must point at the davlint executable"
#endif

namespace {

namespace fs = std::filesystem;

struct LintResult {
  int exit_code = -1;
  std::string output;
};

class DavlintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("davlint_" + std::string(::testing::UnitTest::GetInstance()
                                         ->current_test_info()
                                         ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  fs::path write_fixture(const std::string& name, const std::string& body) {
    const fs::path p = dir_ / name;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << body;
    return p;
  }

  LintResult run(const std::string& args) {
    const fs::path out = dir_ / "lint_output.txt";
    const std::string cmd =
        std::string(DAVLINT_BIN) + " " + args + " > " + out.string() + " 2>&1";
    const int raw = std::system(cmd.c_str());
    LintResult r;
    r.exit_code = WEXITSTATUS(raw);
    std::ifstream in(out);
    std::stringstream ss;
    ss << in.rdbuf();
    r.output = ss.str();
    return r;
  }

  LintResult run_on(const fs::path& target) { return run(target.string()); }

  fs::path dir_;
};

TEST_F(DavlintTest, CleanFileExitsZero) {
  const auto p = write_fixture("clean.cpp",
                               "#include <cstdint>\n"
                               "int add(int a, int b) { return a + b; }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST_F(DavlintTest, MissingPathExitsTwo) {
  const auto r = run((dir_ / "does_not_exist").string());
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(DavlintTest, ListRulesNamesEveryRule) {
  const auto r = run("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule : {"rand", "random-device", "wall-clock",
                           "unordered-iter", "float-eq", "uninit-pod",
                           "obs-clock", "env-read"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
}

// ---- rand ----

TEST_F(DavlintTest, RandPositive) {
  const auto p =
      write_fixture("r.cpp", "#include <cstdlib>\nint f() { return rand(); }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("r.cpp:2: [rand]"), std::string::npos) << r.output;
}

TEST_F(DavlintTest, RandSuppressed) {
  const auto p = write_fixture(
      "r.cpp",
      "#include <cstdlib>\n"
      "int f() { return rand(); }  // test fixture. davlint: allow(rand)\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(DavlintTest, RandCleanOnMemberAndSuffix) {
  const auto p = write_fixture("r.cpp",
                               "struct G { int rand() { return 4; } };\n"
                               "int f(G& g) { return g.rand(); }\n"
                               "int operand(int x) { return x; }\n"
                               "int g2() { return operand(1); }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---- random-device ----

TEST_F(DavlintTest, RandomDevicePositive) {
  const auto p = write_fixture("rd.cpp",
                               "#include <random>\n"
                               "unsigned f() { std::random_device rd; "
                               "return rd(); }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("rd.cpp:2: [random-device]"), std::string::npos)
      << r.output;
}

TEST_F(DavlintTest, RandomDeviceSuppressed) {
  const auto p = write_fixture(
      "rd.cpp",
      "#include <random>\n"
      "unsigned f() { std::random_device rd; return rd(); }  "
      "// fixture. davlint: allow(random-device)\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

// ---- wall-clock ----

TEST_F(DavlintTest, WallClockPositive) {
  const auto p = write_fixture("wc.cpp",
                               "#include <ctime>\n"
                               "long f() { return time(nullptr); }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("wc.cpp:2: [wall-clock]"), std::string::npos)
      << r.output;
}

TEST_F(DavlintTest, WallClockSystemClockPositive) {
  const auto p = write_fixture(
      "wc.cpp", "#include <chrono>\n"
                "auto f() { return std::chrono::system_clock::now(); }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
}

TEST_F(DavlintTest, WallClockMemberCallClean) {
  const auto p = write_fixture("wc.cpp",
                               "struct World { double time() const; };\n"
                               "double f(const World& w) { return w.time(); }\n"
                               "double g(const World* w) { return w->time(); }\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

TEST_F(DavlintTest, WallClockExemptInMetricsLayer) {
  const auto p = write_fixture("campaign/metrics_helper.cpp",
                               "#include <ctime>\n"
                               "long f() { return time(nullptr); }\n");
  // The file lives under a campaign/metrics path, so wall-clock reads are
  // allowed (real elapsed-time reporting, paper Table 2).
  const auto r = run_on(dir_ / "campaign");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(DavlintTest, WallClockSuppressed) {
  const auto p = write_fixture(
      "wc.cpp",
      "#include <ctime>\n"
      "long f() { return time(nullptr); }  // fixture. davlint: allow(wall-clock)\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

// ---- obs-clock ----

TEST_F(DavlintTest, ObsClockPositive) {
  const auto p = write_fixture(
      "oc.cpp", "#include <chrono>\n"
                "auto f() { return std::chrono::steady_clock::now(); }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("oc.cpp:2: [obs-clock]"), std::string::npos)
      << r.output;
}

TEST_F(DavlintTest, ObsClockHighResolutionPositive) {
  const auto p = write_fixture(
      "oc.cpp",
      "#include <chrono>\n"
      "auto f() { return std::chrono::high_resolution_clock::now(); }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[obs-clock]"), std::string::npos) << r.output;
}

TEST_F(DavlintTest, ObsClockExemptInObsLayer) {
  // The flight recorder's whole job is timing spans; steady_clock inside
  // src/obs/ needs no per-line suppression.
  write_fixture("src/obs/span_helper.h",
                "#include <chrono>\n"
                "inline auto f() { return std::chrono::steady_clock::now(); }\n");
  const auto r = run_on(dir_ / "src");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(DavlintTest, ObsClockExemptInExecutorLayer) {
  // The process-isolated executor times real worker processes (watchdog,
  // backoff, utilization) — monotonic clock reads are its job too.
  write_fixture("campaign/executor_helper.cpp",
                "#include <chrono>\n"
                "auto f() { return std::chrono::steady_clock::now(); }\n");
  const auto r = run_on(dir_ / "campaign");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(DavlintTest, ObsClockSuppressed) {
  const auto p = write_fixture(
      "oc.cpp",
      "#include <chrono>\n"
      "auto f() { return std::chrono::steady_clock::now(); }  "
      "// fixture. davlint: allow(obs-clock)\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

TEST_F(DavlintTest, WallClockStillFiresInsideObsLayer) {
  // The obs-clock carve-out is for monotonic clocks only: wall-clock reads
  // (system_clock, time()) stay banned inside src/obs/ like anywhere else.
  write_fixture("src/obs/wall.cpp",
                "#include <chrono>\n"
                "auto f() { return std::chrono::system_clock::now(); }\n");
  const auto r = run_on(dir_ / "src");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
}

// ---- env-read ----

TEST_F(DavlintTest, EnvReadPositive) {
  const auto p = write_fixture(
      "er.cpp",
      "#include <cstdlib>\n"
      "const char* f() { return std::getenv(\"DAV_JOBS\"); }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("er.cpp:2: [env-read]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("EnvOptions"), std::string::npos) << r.output;
}

TEST_F(DavlintTest, EnvReadSuppressed) {
  const auto p = write_fixture(
      "er.cpp",
      "#include <cstdlib>\n"
      "const char* f() { return getenv(\"X\"); }  "
      "// fixture. davlint: allow(env-read)\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

TEST_F(DavlintTest, EnvReadExemptInEnvOptions) {
  // env_options.cpp is the one sanctioned env-reading TU — the facade the
  // rule funnels everyone else through.
  write_fixture("campaign/env_options.cpp",
                "#include <cstdlib>\n"
                "const char* f() { return std::getenv(\"DAV_SCALE\"); }\n");
  const auto r = run_on(dir_ / "campaign");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(DavlintTest, EnvReadCleanOnMemberCall) {
  const auto p = write_fixture("er.cpp",
                               "struct E { int getenv() { return 0; } };\n"
                               "int f(E& e) { return e.getenv(); }\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

// ---- unordered-iter ----

TEST_F(DavlintTest, UnorderedIterPositive) {
  const auto p = write_fixture(
      "ui.cpp",
      "#include <unordered_map>\n"
      "int f() {\n"
      "  std::unordered_map<int, int> counts;\n"
      "  int sum = 0;\n"
      "  for (const auto& kv : counts) sum += kv.second;\n"
      "  return sum;\n"
      "}\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("ui.cpp:5: [unordered-iter]"), std::string::npos)
      << r.output;
}

TEST_F(DavlintTest, UnorderedIterSuppressed) {
  const auto p = write_fixture(
      "ui.cpp",
      "#include <unordered_map>\n"
      "int f() {\n"
      "  std::unordered_map<int, int> counts;\n"
      "  int sum = 0;\n"
      "  // Summation is order-independent:\n"
      "  for (const auto& kv : counts) sum += kv.second;  // davlint: allow(unordered-iter)\n"
      "  return sum;\n"
      "}\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

TEST_F(DavlintTest, OrderedMapIterClean) {
  const auto p = write_fixture("ui.cpp",
                               "#include <map>\n"
                               "int f() {\n"
                               "  std::map<int, int> counts;\n"
                               "  int sum = 0;\n"
                               "  for (const auto& kv : counts) sum += kv.second;\n"
                               "  return sum;\n"
                               "}\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

// ---- float-eq ----

TEST_F(DavlintTest, FloatEqPositive) {
  const auto p = write_fixture("fe.cpp",
                               "bool f(double x) { return x == 1.5; }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("fe.cpp:1: [float-eq]"), std::string::npos)
      << r.output;
}

TEST_F(DavlintTest, FloatNeqLiteralOnLeftPositive) {
  const auto p = write_fixture("fe.cpp",
                               "bool f(float x) { return 0.0f != x; }\n");
  EXPECT_EQ(run_on(p).exit_code, 1);
}

TEST_F(DavlintTest, FloatEqSuppressed) {
  const auto p = write_fixture(
      "fe.cpp",
      "bool f(double x) { return x == 1.5; }  // sentinel. davlint: allow(float-eq)\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

TEST_F(DavlintTest, IntegerEqClean) {
  const auto p = write_fixture("fe.cpp",
                               "bool f(int x) { return x == 15; }\n"
                               "bool g(double x) { return x <= 1.5; }\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

// ---- uninit-pod ----

TEST_F(DavlintTest, UninitPodPositive) {
  const auto p = write_fixture("up.h",
                               "struct State {\n"
                               "  double v;\n"
                               "  int steps;\n"
                               "};\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("up.h:2: [uninit-pod]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("up.h:3: [uninit-pod]"), std::string::npos)
      << r.output;
}

TEST_F(DavlintTest, UninitPodSuppressed) {
  const auto p = write_fixture(
      "up.h",
      "struct State {\n"
      "  double v;  // set by ctor of owner. davlint: allow(uninit-pod)\n"
      "};\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

TEST_F(DavlintTest, InitializedPodClean) {
  const auto p = write_fixture("up.h",
                               "struct State {\n"
                               "  double v = 0.0;\n"
                               "  int steps{0};\n"
                               "  static int shared;\n"
                               "  int describe() const;\n"
                               "};\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(DavlintTest, ClassMembersExemptFromUninitPod) {
  // Classes are assumed to initialize members in constructors; the rule
  // targets aggregate structs whose indeterminate bytes leak into traces.
  const auto p = write_fixture("up.h",
                               "class Engine {\n"
                               " public:\n"
                               "  explicit Engine(int n);\n"
                               " private:\n"
                               "  int n_;\n"
                               "};\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

// ---- CLI behaviour ----

TEST_F(DavlintTest, RulesFilterRestrictsChecks) {
  const auto p = write_fixture("multi.cpp",
                               "#include <cstdlib>\n"
                               "int f() { return rand(); }\n"
                               "bool g(double x) { return x == 1.5; }\n");
  const auto all = run_on(p);
  EXPECT_EQ(all.exit_code, 1);
  EXPECT_NE(all.output.find("[rand]"), std::string::npos);
  EXPECT_NE(all.output.find("[float-eq]"), std::string::npos);

  const auto only_rand = run("--rules=rand " + p.string());
  EXPECT_EQ(only_rand.exit_code, 1);
  EXPECT_NE(only_rand.output.find("[rand]"), std::string::npos);
  EXPECT_EQ(only_rand.output.find("[float-eq]"), std::string::npos)
      << only_rand.output;
}

TEST_F(DavlintTest, UnknownRuleExitsTwo) {
  EXPECT_EQ(run("--rules=nonsense " + dir_.string()).exit_code, 2);
}

TEST_F(DavlintTest, CommentsAndStringsAreIgnored) {
  const auto p = write_fixture(
      "noise.cpp",
      "// rand() in a comment is fine\n"
      "/* so is time(nullptr) in a block\n"
      "   spanning lines with rand() */\n"
      "const char* kMsg = \"rand() and time(nullptr) in a string\";\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(DavlintTest, DirectoryScanAggregatesFindings) {
  write_fixture("a/one.cpp", "#include <cstdlib>\nint f() { return rand(); }\n");
  write_fixture("a/two.cpp", "bool g(double x) { return x == 2.5; }\n");
  write_fixture("a/README.md", "rand() in docs is not scanned\n");
  const auto r = run_on(dir_ / "a");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("one.cpp:2: [rand]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("two.cpp:1: [float-eq]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("2 findings"), std::string::npos) << r.output;
}

// ---- lexer: raw strings ----

TEST_F(DavlintTest, RawStringContentIsStripped) {
  // PR-1's per-line stripper miscounted R"(...)" and could swallow the rest
  // of the file; the lexer must skip the raw body (including hazards inside
  // it) and keep scanning the code after the closing delimiter.
  const auto p = write_fixture(
      "raw.cpp",
      "#include <cstdlib>\n"
      "const char* kDoc = R\"(rand() time(nullptr) \" unbalanced)\";\n"
      "const char* kMulti = R\"delim(\n"
      "  srand(42); \")\" still inside\n"
      ")delim\";\n"
      "int f() { return rand(); }\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("raw.cpp:6: [rand]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 finding"), std::string::npos) << r.output;
}

// ---- signal-safety ----

TEST_F(DavlintTest, SignalSafetyWalksHandlerTwoHopsDeep) {
  const auto p = write_fixture(
      "sig.cpp",
      "#include <csignal>\n"
      "#include <cstdlib>\n"
      "void helper2() { void* p = malloc(16); (void)p; }\n"
      "void helper1() { helper2(); }\n"
      "void on_term(int) { helper1(); }\n"
      "void install() {\n"
      "  struct sigaction sa {};\n"
      "  sa.sa_handler = on_term;\n"
      "  ::sigaction(SIGTERM, &sa, nullptr);\n"
      "}\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("[signal-safety]"), std::string::npos) << r.output;
  // The violating call chain is printed hop by hop down to the malloc.
  EXPECT_NE(r.output.find("on_term"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("helper1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("helper2"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("malloc"), std::string::npos) << r.output;
}

TEST_F(DavlintTest, SignalSafetyAllowlistedHandlerIsClean) {
  const auto p = write_fixture(
      "sig.cpp",
      "#include <csignal>\n"
      "#include <unistd.h>\n"
      "void on_term(int sig) { ::write(2, \"bye\\n\", 4); ::raise(sig); }\n"
      "void install() { ::signal(SIGTERM, on_term); }\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

TEST_F(DavlintTest, SignalSafetySuppressedAtCallSite) {
  const auto p = write_fixture(
      "sig.cpp",
      "#include <csignal>\n"
      "#include <cstdlib>\n"
      "void on_term(int) { malloc(8); }  // davlint: allow(signal-safety)\n"
      "void install() { ::signal(SIGTERM, on_term); }\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

// ---- fork-safety ----

TEST_F(DavlintTest, ForkChildStdioIsFlagged) {
  const auto p = write_fixture(
      "fk.cpp",
      "#include <cstdio>\n"
      "#include <unistd.h>\n"
      "int main() {\n"
      "  pid_t pid = ::fork();\n"
      "  if (pid == 0) {\n"
      "    printf(\"child\\n\");\n"
      "    ::_exit(0);\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("fk.cpp:6: [fork-safety]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("printf"), std::string::npos) << r.output;
}

TEST_F(DavlintTest, ForkChildWriteOnlyIsClean) {
  const auto p = write_fixture(
      "fk.cpp",
      "#include <unistd.h>\n"
      "int main() {\n"
      "  pid_t pid = ::fork();\n"
      "  if (pid == 0) {\n"
      "    ::write(2, \"child\\n\", 6);\n"
      "    ::_exit(0);\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

TEST_F(DavlintTest, ForkChildSocketSyscallsAreClean) {
  // The transport daemon forks protocol workers that speak over sockets;
  // the raw socket syscalls are async-signal-safe and must stay allowlisted.
  const auto p = write_fixture(
      "fk.cpp",
      "#include <sys/socket.h>\n"
      "#include <unistd.h>\n"
      "int main() {\n"
      "  pid_t pid = ::fork();\n"
      "  if (pid == 0) {\n"
      "    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n"
      "    ::connect(fd, nullptr, 0);\n"
      "    ::send(fd, \"x\", 1, 0);\n"
      "    char c;\n"
      "    ::recv(fd, &c, 1, 0);\n"
      "    ::shutdown(fd, SHUT_RDWR);\n"
      "    ::close(fd);\n"
      "    ::_exit(0);\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

TEST_F(DavlintTest, SignalHandlerSocketShutdownIsClean) {
  // A handler that nudges a peer by closing a socket uses only
  // async-signal-safe syscalls.
  const auto p = write_fixture(
      "sig.cpp",
      "#include <csignal>\n"
      "#include <sys/socket.h>\n"
      "int g_fd;\n"
      "void on_term(int) { ::shutdown(g_fd, SHUT_RDWR); }\n"
      "void install() { ::signal(SIGTERM, on_term); }\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

// ---- layering ----

TEST_F(DavlintTest, LayeringBackEdgeFromCoreToCampaign) {
  write_fixture("src/campaign/driver.h", "#pragma once\n");
  const auto core = write_fixture("src/core/detector.cpp",
                                  "#include \"campaign/driver.h\"\n"
                                  "int detect() { return 0; }\n");
  const auto r = run_on(dir_ / "src");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("detector.cpp:1: [layering]"), std::string::npos)
      << r.output;
  (void)core;
}

TEST_F(DavlintTest, LayeringDownwardIncludeIsClean) {
  write_fixture("src/util/stats.h", "#pragma once\n");
  write_fixture("src/campaign/driver.cpp",
                "#include \"util/stats.h\"\n"
                "int drive() { return 0; }\n");
  EXPECT_EQ(run_on(dir_ / "src").exit_code, 0);
}

TEST_F(DavlintTest, LayeringSensorFaultCannotIncludeUpward) {
  // fi sits below sensors/agent/core: the sensor-fault subsystem must stay
  // includable from the capture seam without dragging higher layers in.
  write_fixture("src/sensors/sensor_rig.h", "#pragma once\n");
  const auto fi = write_fixture("src/fi/sensor_fault.h",
                                "#pragma once\n"
                                "#include \"sensors/sensor_rig.h\"\n");
  const auto r = run_on(dir_ / "src");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("sensor_fault.h:2: [layering]"), std::string::npos)
      << r.output;
  (void)fi;
}

TEST_F(DavlintTest, LayeringSensorsMayIncludeFi) {
  // The downward edge the rig's injection hook depends on.
  write_fixture("src/fi/sensor_fault.h", "#pragma once\n");
  write_fixture("src/sensors/sensor_rig.cpp",
                "#include \"fi/sensor_fault.h\"\n"
                "int capture() { return 0; }\n");
  EXPECT_EQ(run_on(dir_ / "src").exit_code, 0);
}

TEST_F(DavlintTest, LayeringIncludeCycleIsFlagged) {
  write_fixture("src/core/a.h", "#pragma once\n#include \"core/b.h\"\n");
  write_fixture("src/core/b.h", "#pragma once\n#include \"core/a.h\"\n");
  const auto r = run_on(dir_ / "src");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("include cycle"), std::string::npos) << r.output;
}

// ---- taint ----

TEST_F(DavlintTest, TaintFlowsIntoSerializeRunResult) {
  const auto p = write_fixture(
      "tt.cpp",
      "#include <string>\n"
      "struct RunResult { double score; };\n"
      "std::string serialize_run_result(const RunResult& r);\n"
      "std::string snapshot(double wall_sec) {\n"
      "  RunResult r;\n"
      "  double stamp = wall_sec * 2.0;\n"
      "  r.score = stamp;\n"
      "  return serialize_run_result(r);\n"
      "}\n");
  const auto r = run_on(p);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("tt.cpp:8: [taint]"), std::string::npos) << r.output;
}

TEST_F(DavlintTest, TaintCleanWhenSeedDerived) {
  const auto p = write_fixture(
      "tt.cpp",
      "#include <string>\n"
      "struct RunResult { double score; };\n"
      "std::string serialize_run_result(const RunResult& r);\n"
      "std::string snapshot(unsigned seed) {\n"
      "  RunResult r;\n"
      "  r.score = static_cast<double>(seed);\n"
      "  return serialize_run_result(r);\n"
      "}\n");
  EXPECT_EQ(run_on(p).exit_code, 0);
}

// ---- baseline ----

TEST_F(DavlintTest, BaselineRoundTripSilencesFindings) {
  const auto p = write_fixture(
      "bl.cpp", "#include <cstdlib>\nint f() { return rand(); }\n");
  const auto base = dir_ / "davlint.baseline";

  const auto wrote = run("--write-baseline=" + base.string() + " " + p.string());
  EXPECT_EQ(wrote.exit_code, 0) << wrote.output;
  EXPECT_NE(wrote.output.find("1 baseline entry"), std::string::npos)
      << wrote.output;

  const auto gated = run("--baseline=" + base.string() + " " + p.string());
  EXPECT_EQ(gated.exit_code, 0) << gated.output;

  // A fresh finding not in the baseline still fails the gate.
  const auto p2 = write_fixture(
      "bl2.cpp", "#include <cstdlib>\nint g() { return rand(); }\n");
  const auto dirty =
      run("--baseline=" + base.string() + " " + p.string() + " " + p2.string());
  EXPECT_EQ(dirty.exit_code, 1);
  EXPECT_NE(dirty.output.find("bl2.cpp:2: [rand]"), std::string::npos)
      << dirty.output;
  EXPECT_EQ(dirty.output.find("bl.cpp:2:"), std::string::npos) << dirty.output;
}

// ---- SARIF ----

TEST_F(DavlintTest, SarifOutputContainsRuleAndLocation) {
  const auto p = write_fixture(
      "sa.cpp", "#include <cstdlib>\nint f() { return rand(); }\n");
  const auto sarif = dir_ / "out.sarif";
  const auto r = run("--sarif=" + sarif.string() + " " + p.string());
  EXPECT_EQ(r.exit_code, 1);

  std::ifstream in(sarif);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"ruleId\": \"rand\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("sa.cpp"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"startLine\": 2"), std::string::npos) << doc;
}

// ---- rules documentation ----

TEST_F(DavlintTest, ReadmeRulesTableMatchesRulesMd) {
  // Same no-drift pattern as EnvOptions::docs(): the README embeds the
  // generated table between markers; if the registry changes, regenerate
  // with `davlint --rules-md` and paste the block.
  std::ifstream in(DAV_README_PATH);
  ASSERT_TRUE(in) << DAV_README_PATH;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string readme = ss.str();
  const std::string begin_mark = "<!-- davlint-rules:begin -->\n";
  const std::string end_mark = "<!-- davlint-rules:end -->";
  const std::size_t b = readme.find(begin_mark);
  const std::size_t e = readme.find(end_mark);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(e, std::string::npos);
  const std::string embedded =
      readme.substr(b + begin_mark.size(), e - b - begin_mark.size());

  const auto r = run("--rules-md");
  ASSERT_EQ(r.exit_code, 0);
  EXPECT_EQ(embedded, r.output);
}

TEST_F(DavlintTest, RulesMarkdownNamesEveryRule) {
  const auto r = run("--rules-md");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"rand", "random-device", "wall-clock", "unordered-iter", "float-eq",
        "uninit-pod", "obs-clock", "env-read", "signal-safety", "fork-safety",
        "layering", "taint"}) {
    EXPECT_NE(r.output.find(std::string("`") + rule + "`"), std::string::npos)
        << rule << "\n" << r.output;
  }
}

}  // namespace
