#include <gtest/gtest.h>

#include "sensors/sensor_rig.h"
#include "sim/scenario.h"

namespace dav {
namespace {

TEST(SensorRig, CapturesThreeCamerasAndImu) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  SensorRig rig(front_camera_rig(), 7);
  const SensorFrame frame = rig.capture(world, 5);
  EXPECT_EQ(frame.step, 5);
  EXPECT_DOUBLE_EQ(frame.time, 0.0);
  EXPECT_EQ(frame.cameras.size(), 3u);
  EXPECT_TRUE(frame.lidar.empty());  // disabled by default
  EXPECT_NEAR(frame.gps_imu.speed, 10.0, 1.0);
}

TEST(SensorRig, LidarEnabled) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  SensorRig rig(front_camera_rig(), 7, /*enable_lidar=*/true);
  const SensorFrame frame = rig.capture(world, 0);
  EXPECT_FALSE(frame.lidar.empty());
}

TEST(SensorRig, FrameBytesMatchesResolution) {
  SensorRig rig(front_camera_rig(96, 72), 7);
  EXPECT_EQ(rig.frame_bytes(), 3u * 96u * 72u * 3u);
}

TEST(SensorRig, NoiseSeedDeterminism) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  SensorRig a(front_camera_rig(), 7);
  SensorRig b(front_camera_rig(), 7);
  SensorRig c(front_camera_rig(), 8);
  EXPECT_EQ(a.capture(world, 0).cameras[1].bytes(),
            b.capture(world, 0).cameras[1].bytes());
  EXPECT_NE(a.capture(world, 1).cameras[1].bytes(),
            c.capture(world, 1).cameras[1].bytes());
}

TEST(SensorRig, LidarStreamIndependentOfCameraAndImuNoise) {
  // The rig draws camera, IMU and LiDAR noise from split() streams of the
  // one noise seed. Turning LiDAR capture ON must not perturb the camera or
  // IMU sequences — otherwise enabling fusion (which enables LiDAR) would
  // shift every golden-run byte and break cross-config comparisons.
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  SensorRig plain(front_camera_rig(), 7);
  SensorRig fused(front_camera_rig(), 7, /*enable_lidar=*/true);
  for (int step = 0; step < 5; ++step) {
    const SensorFrame a = plain.capture(world, step);
    const SensorFrame b = fused.capture(world, step);
    for (int cam = 0; cam < 3; ++cam) {
      EXPECT_EQ(a.cameras[static_cast<std::size_t>(cam)].bytes(),
                b.cameras[static_cast<std::size_t>(cam)].bytes())
          << "camera " << cam << " diverged at step " << step;
    }
    EXPECT_EQ(a.gps_imu.as_array(), b.gps_imu.as_array())
        << "gps/imu diverged at step " << step;
    EXPECT_TRUE(a.lidar.empty());
    EXPECT_FALSE(b.lidar.empty());
  }
}

TEST(SensorRig, AttachedInjectorCorruptsCaptureButNotNoiseStreams) {
  // The injector corrupts frames at the capture seam from its OWN plan-seeded
  // streams; the rig's noise sequences must be unaffected, so the corrupted
  // frame differs from the clean one exactly by the injected fault.
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  SensorRig clean(front_camera_rig(), 7);
  SensorRig faulty(front_camera_rig(), 7);
  SensorFaultPlan plan;
  plan.model = SensorFaultModel::kCameraBlackout;
  plan.sensor_index = 1;
  plan.onset_tick = 1;
  plan.duration_ticks = 2;
  plan.seed = 99;
  SensorFaultInjector inj(plan);
  faulty.attach_fault_injector(&inj);

  const SensorFrame c0 = clean.capture(world, 0);
  const SensorFrame f0 = faulty.capture(world, 0);
  EXPECT_EQ(c0.cameras[1].bytes(), f0.cameras[1].bytes());  // pre-onset

  const SensorFrame c1 = clean.capture(world, 1);
  const SensorFrame f1 = faulty.capture(world, 1);
  EXPECT_NE(c1.cameras[1].bytes(), f1.cameras[1].bytes());  // blacked out
  EXPECT_EQ(c1.cameras[0].bytes(), f1.cameras[0].bytes());  // other cameras
  EXPECT_EQ(c1.cameras[2].bytes(), f1.cameras[2].bytes());  // untouched
  EXPECT_EQ(c1.gps_imu.as_array(), f1.gps_imu.as_array());

  // Past the window the sequences re-converge: the rig's streams never saw
  // the injector.
  const SensorFrame c3 = clean.capture(world, 3);
  const SensorFrame f3 = faulty.capture(world, 3);
  EXPECT_EQ(c3.cameras[1].bytes(), f3.cameras[1].bytes());
}

}  // namespace
}  // namespace dav
