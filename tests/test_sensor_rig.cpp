#include <gtest/gtest.h>

#include "sensors/sensor_rig.h"
#include "sim/scenario.h"

namespace dav {
namespace {

TEST(SensorRig, CapturesThreeCamerasAndImu) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  SensorRig rig(front_camera_rig(), 7);
  const SensorFrame frame = rig.capture(world, 5);
  EXPECT_EQ(frame.step, 5);
  EXPECT_DOUBLE_EQ(frame.time, 0.0);
  EXPECT_EQ(frame.cameras.size(), 3u);
  EXPECT_TRUE(frame.lidar.empty());  // disabled by default
  EXPECT_NEAR(frame.gps_imu.speed, 10.0, 1.0);
}

TEST(SensorRig, LidarEnabled) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  SensorRig rig(front_camera_rig(), 7, /*enable_lidar=*/true);
  const SensorFrame frame = rig.capture(world, 0);
  EXPECT_FALSE(frame.lidar.empty());
}

TEST(SensorRig, FrameBytesMatchesResolution) {
  SensorRig rig(front_camera_rig(96, 72), 7);
  EXPECT_EQ(rig.frame_bytes(), 3u * 96u * 72u * 3u);
}

TEST(SensorRig, NoiseSeedDeterminism) {
  World world(make_scenario(ScenarioId::kLeadSlowdown));
  SensorRig a(front_camera_rig(), 7);
  SensorRig b(front_camera_rig(), 7);
  SensorRig c(front_camera_rig(), 8);
  EXPECT_EQ(a.capture(world, 0).cameras[1].bytes(),
            b.capture(world, 0).cameras[1].bytes());
  EXPECT_NE(a.capture(world, 1).cameras[1].bytes(),
            c.capture(world, 1).cameras[1].bytes());
}

}  // namespace
}  // namespace dav
