// Closed-loop fault mitigation: online detection, agent restart with state
// resync, degraded single-agent mode, escalation to the safe-stop failback,
// and the determinism of the whole recovery timeline.
#include <gtest/gtest.h>

#include <optional>

#include "campaign/campaign.h"
#include "campaign/metrics.h"
#include "core/detector.h"

namespace dav {
namespace {

CampaignScale tiny_scale() {
  CampaignScale s;
  s.golden_runs = 3;
  s.training_runs_per_scenario = 1;
  s.safety_duration_sec = 15.0;
  s.long_route_duration_sec = 20.0;
  return s;
}

RecoveryConfig quick_recovery() {
  RecoveryConfig rc;
  rc.probe_ticks = 4;
  rc.rewarm_ticks = 20;
  rc.max_recoveries = 2;
  rc.recovery_window_ticks = 300;
  return rc;
}

TEST(OnlineDetector, AlarmFreeOnCleanSafetyScenarios) {
  // The in-run detector must be quiet on every fault-free safety scenario
  // (an alarm here would safe-stop a healthy vehicle).
  CampaignManager mgr(tiny_scale(), 2022);
  const ThresholdLut lut =
      train_lut(mgr.training_observations(AgentMode::kRoundRobin), /*rw=*/3);
  for (ScenarioId scenario : safety_scenarios()) {
    for (MitigationPolicy policy : {MitigationPolicy::kSafeStopOnly,
                                    MitigationPolicy::kRestartRecovery}) {
      RunConfig cfg = mgr.base_config(scenario, AgentMode::kRoundRobin);
      cfg.run_seed = 11;
      cfg.online_lut = &lut;
      cfg.mitigation = policy;
      cfg.recovery = quick_recovery();
      const RunResult r = run_experiment(cfg);
      EXPECT_FALSE(r.online_alarmed)
          << to_string(scenario) << " under " << to_string(policy);
      EXPECT_FALSE(r.due) << to_string(scenario);
      EXPECT_EQ(r.recovery.attempts, 0) << to_string(scenario);
      EXPECT_FALSE(r.collision) << to_string(scenario);
    }
  }
}

/// Sweeps transient GPU plans (sites expressed as fractions of the profiled
/// dynamic-instruction count, so the sweep tracks upstream workload changes)
/// until one completes a recovery — via a crash DUE or a detector alarm.
/// Returns the config, or nullopt. `lut` must outlive the returned config.
std::optional<RunConfig> find_recovered_transient(CampaignManager& mgr,
                                                  const ThresholdLut& lut) {
  RunConfig base =
      mgr.base_config(ScenarioId::kFrontAccident, AgentMode::kRoundRobin);
  base.run_seed = 1;
  const std::uint64_t total = run_experiment(base).gpu_instructions;
  for (std::uint64_t frac = 1; frac <= 9; frac += 2) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      RunConfig cfg = base;
      cfg.run_seed = seed;
      FaultPlan plan;
      plan.kind = FaultModelKind::kTransient;
      plan.domain = FaultDomain::kGpu;
      plan.target_dyn_index = total / 2 * frac / 10;
      plan.bit = 30;
      cfg.fault = plan;
      cfg.online_lut = &lut;
      cfg.mitigation = MitigationPolicy::kRestartRecovery;
      cfg.recovery = quick_recovery();
      const RunResult r = run_experiment(cfg);
      if (r.recovery.completed >= 1 && !r.recovery.escalated) return cfg;
    }
  }
  return std::nullopt;
}

TEST(RestartRecovery, TransientFaultRecoversWithHigherAvailability) {
  CampaignManager mgr(tiny_scale(), 2022);
  const ThresholdLut lut =
      train_lut(mgr.training_observations(AgentMode::kRoundRobin), /*rw=*/3);
  const auto cfg = find_recovered_transient(mgr, lut);
  ASSERT_TRUE(cfg.has_value())
      << "no transient plan in the sweep completed a recovery";

  RunConfig recovered = *cfg;
  const RunResult rr = run_experiment(recovered);
  ASSERT_GE(rr.recovery.completed, 1);
  const RecoveryEvent& ev = rr.recovery.events.front();
  EXPECT_GE(ev.suspect, 0);
  EXPECT_GE(ev.alarm_tick, 0);
  EXPECT_GE(ev.restart_tick, ev.alarm_tick);
  EXPECT_GT(ev.rejoin_tick, ev.restart_tick);
  EXPECT_GT(ev.rejoin_time, ev.alarm_time);

  RunConfig stop = recovered;
  stop.mitigation = MitigationPolicy::kSafeStopOnly;
  const RunResult rs = run_experiment(stop);
  // Same seed, same fault: the safe stop forfeits the rest of the mission,
  // the restart path drives on.
  EXPECT_GT(availability_fraction(rr), availability_fraction(rs));
}

TEST(RestartRecovery, PermanentFaultEscalatesWithoutLivelock) {
  // A permanent memory-class GPU fault re-manifests every time the restarted
  // replica re-warms; the escalation window must convert the restart loop
  // into a safe-stop failback.
  CampaignManager mgr(tiny_scale(), 2022);
  bool saw_escalation = false;
  for (std::uint64_t seed = 1; seed <= 6 && !saw_escalation; ++seed) {
    RunConfig cfg =
        mgr.base_config(ScenarioId::kLeadSlowdown, AgentMode::kRoundRobin);
    cfg.run_seed = seed;
    FaultPlan plan;
    plan.kind = FaultModelKind::kPermanent;
    plan.domain = FaultDomain::kGpu;
    plan.target_opcode = static_cast<int>(GpuOpcode::kLdg);
    plan.bit = 12;
    cfg.fault = plan;
    cfg.mitigation = MitigationPolicy::kRestartRecovery;
    cfg.recovery = quick_recovery();
    const RunResult r = run_experiment(cfg);
    if (!r.due) continue;  // manifestation draw spared this run
    // Bounded: never more restart attempts than the escalation policy allows
    // per window, and the run itself terminates (we got here).
    EXPECT_LE(r.recovery.attempts,
              cfg.recovery.max_recoveries + 1);
    if (r.recovery.escalated) {
      saw_escalation = true;
      EXPECT_GT(r.recovery.failback_ticks, 0);
      EXPECT_TRUE(r.outcome == FaultOutcome::kCrash ||
                  r.outcome == FaultOutcome::kHang);
    }
  }
  EXPECT_TRUE(saw_escalation);
}

TEST(RestartRecovery, DeterministicTimeline) {
  CampaignManager mgr(tiny_scale(), 2022);
  const ThresholdLut lut =
      train_lut(mgr.training_observations(AgentMode::kRoundRobin), /*rw=*/3);
  const auto found = find_recovered_transient(mgr, lut);
  ASSERT_TRUE(found.has_value());
  const RunResult a = run_experiment(*found);
  const RunResult b = run_experiment(*found);

  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.due, b.due);
  EXPECT_EQ(a.due_source, b.due_source);
  EXPECT_DOUBLE_EQ(a.due_time, b.due_time);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_DOUBLE_EQ(a.duration, b.duration);
  EXPECT_EQ(a.collision, b.collision);
  EXPECT_DOUBLE_EQ(a.collision_time, b.collision_time);
  EXPECT_EQ(a.observations.size(), b.observations.size());
  EXPECT_EQ(a.trajectory.size(), b.trajectory.size());

  EXPECT_EQ(a.recovery.attempts, b.recovery.attempts);
  EXPECT_EQ(a.recovery.completed, b.recovery.completed);
  EXPECT_EQ(a.recovery.escalated, b.recovery.escalated);
  EXPECT_EQ(a.recovery.nominal_ticks, b.recovery.nominal_ticks);
  EXPECT_EQ(a.recovery.probe_ticks, b.recovery.probe_ticks);
  EXPECT_EQ(a.recovery.degraded_ticks, b.recovery.degraded_ticks);
  EXPECT_EQ(a.recovery.failback_ticks, b.recovery.failback_ticks);
  ASSERT_EQ(a.recovery.events.size(), b.recovery.events.size());
  for (std::size_t i = 0; i < a.recovery.events.size(); ++i) {
    const RecoveryEvent& ea = a.recovery.events[i];
    const RecoveryEvent& eb = b.recovery.events[i];
    EXPECT_EQ(ea.suspect, eb.suspect);
    EXPECT_EQ(ea.trigger, eb.trigger);
    EXPECT_EQ(ea.alarm_tick, eb.alarm_tick);
    EXPECT_EQ(ea.restart_tick, eb.restart_tick);
    EXPECT_EQ(ea.rejoin_tick, eb.rejoin_tick);
    EXPECT_DOUBLE_EQ(ea.alarm_time, eb.alarm_time);
    EXPECT_DOUBLE_EQ(ea.restart_time, eb.restart_time);
    EXPECT_DOUBLE_EQ(ea.rejoin_time, eb.rejoin_time);
  }
  EXPECT_DOUBLE_EQ(availability_fraction(a), availability_fraction(b));
}

TEST(RestartRecovery, RejectedInSingleMode) {
  CampaignManager mgr(tiny_scale(), 2022);
  RunConfig cfg = mgr.base_config(ScenarioId::kLeadSlowdown,
                                  AgentMode::kSingle);
  cfg.mitigation = MitigationPolicy::kRestartRecovery;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(MitigationSetup, AppliesPolicyToCampaignRuns) {
  CampaignScale s = tiny_scale();
  s.transient_runs = 4;
  CampaignManager mgr(s, 2022);
  MitigationSetup setup;
  setup.policy = MitigationPolicy::kRestartRecovery;
  setup.recovery = quick_recovery();
  const auto runs =
      mgr.fi_campaign(ScenarioId::kFrontAccident, AgentMode::kRoundRobin,
                      FaultDomain::kGpu, FaultModelKind::kTransient, &setup);
  EXPECT_FALSE(runs.empty());
  // Every run executed under the supervisor with the mitigation applied: any
  // DUE run must show recovery bookkeeping (an attempt or failback ticks).
  for (const auto& r : runs) {
    if (r.due && r.outcome != FaultOutcome::kHarnessError) {
      EXPECT_TRUE(r.recovery.attempts > 0 ||
                  r.recovery.failback_ticks > 0);
    }
  }
}

}  // namespace
}  // namespace dav
