#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace dav {
namespace {

TEST(ScenarioLists, SafetyAndTraining) {
  EXPECT_EQ(safety_scenarios().size(), 3u);
  EXPECT_EQ(training_scenarios().size(), 3u);
  for (ScenarioId id : safety_scenarios()) EXPECT_TRUE(is_safety_critical(id));
  for (ScenarioId id : training_scenarios()) {
    EXPECT_FALSE(is_safety_critical(id));
  }
}

TEST(ScenarioNames, AreDistinctAndNonEmpty) {
  std::vector<std::string> names;
  for (ScenarioId id :
       {ScenarioId::kLeadSlowdown, ScenarioId::kGhostCutIn,
        ScenarioId::kFrontAccident, ScenarioId::kLongRoute02,
        ScenarioId::kLongRoute15, ScenarioId::kLongRoute42}) {
    names.push_back(to_string(id));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(LeadSlowdown, HasLeadAt25m) {
  const Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  ASSERT_EQ(sc.npcs.size(), 1u);
  EXPECT_NEAR(sc.npcs[0].s() - sc.ego_start_s, 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(sc.npcs[0].lateral(), 0.0);
}

TEST(GhostCutIn, CutterStartsBehindInLeftLane) {
  const Scenario sc = make_scenario(ScenarioId::kGhostCutIn);
  ASSERT_EQ(sc.npcs.size(), 1u);
  EXPECT_LT(sc.npcs[0].s(), sc.ego_start_s);
  EXPECT_DOUBLE_EQ(sc.npcs[0].lateral(), 3.5);
  EXPECT_GT(sc.npcs[0].speed(), sc.ego_start_speed);
}

TEST(FrontAccident, TwoNpcsLeadAndMerger) {
  const Scenario sc = make_scenario(ScenarioId::kFrontAccident);
  ASSERT_EQ(sc.npcs.size(), 2u);
  EXPECT_DOUBLE_EQ(sc.npcs[0].lateral(), 0.0);   // lead in ego lane
  EXPECT_DOUBLE_EQ(sc.npcs[1].lateral(), 3.5);   // merger in left lane
}

TEST(LongRoutes, HaveTrafficAndLimits) {
  for (ScenarioId id : training_scenarios()) {
    const Scenario sc = make_scenario(id);
    EXPECT_GT(sc.npcs.size(), 3u) << to_string(id);
    EXPECT_GT(sc.map.route().length(), 400.0) << to_string(id);
    EXPECT_LE(sc.map.speed_limit_at(10.0), sc.target_speed + 1e-9);
  }
}

TEST(LongRoutes, UrbanHasLightsHighwayDoesNot) {
  EXPECT_FALSE(
      make_scenario(ScenarioId::kLongRoute02).map.traffic_lights().empty());
  EXPECT_FALSE(
      make_scenario(ScenarioId::kLongRoute15).map.traffic_lights().empty());
  EXPECT_TRUE(
      make_scenario(ScenarioId::kLongRoute42).map.traffic_lights().empty());
}

TEST(Traffic, SeedIsDeterministic) {
  const Scenario a = make_scenario(ScenarioId::kLongRoute02, 99);
  const Scenario b = make_scenario(ScenarioId::kLongRoute02, 99);
  ASSERT_EQ(a.npcs.size(), b.npcs.size());
  for (std::size_t i = 0; i < a.npcs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.npcs[i].s(), b.npcs[i].s());
    EXPECT_DOUBLE_EQ(a.npcs[i].lateral(), b.npcs[i].lateral());
    EXPECT_DOUBLE_EQ(a.npcs[i].speed(), b.npcs[i].speed());
  }
}

TEST(Traffic, DifferentSeedsDiffer) {
  const Scenario a = make_scenario(ScenarioId::kLongRoute02, 1);
  const Scenario b = make_scenario(ScenarioId::kLongRoute02, 2);
  bool any_diff = a.npcs.size() != b.npcs.size();
  for (std::size_t i = 0; !any_diff && i < a.npcs.size(); ++i) {
    any_diff = a.npcs[i].s() != b.npcs[i].s();
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScenarioOptionsTest, DurationScaling) {
  ScenarioOptions opts;
  opts.safety_duration_sec = 12.0;
  opts.long_route_duration_sec = 33.0;
  EXPECT_DOUBLE_EQ(
      make_scenario(ScenarioId::kLeadSlowdown, 2022, opts).duration_sec, 12.0);
  EXPECT_DOUBLE_EQ(
      make_scenario(ScenarioId::kLongRoute42, 2022, opts).duration_sec, 33.0);
}

TEST(SafetyScenarios, BackgroundTrafficFreeByDesign) {
  // The three NHTSA scenarios are fully scripted; no extra traffic.
  EXPECT_EQ(make_scenario(ScenarioId::kLeadSlowdown).npcs.size(), 1u);
  EXPECT_EQ(make_scenario(ScenarioId::kGhostCutIn).npcs.size(), 1u);
  EXPECT_EQ(make_scenario(ScenarioId::kFrontAccident).npcs.size(), 2u);
}

}  // namespace
}  // namespace dav
