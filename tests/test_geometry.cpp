#include <gtest/gtest.h>

#include <cmath>

#include "util/geometry.h"

namespace dav {
namespace {

Obb make_obb(double x, double y, double yaw, double hl, double hw) {
  Obb o;
  o.pose.pos = {x, y};
  o.pose.yaw = yaw;
  o.half_length = hl;
  o.half_width = hw;
  return o;
}

TEST(Obb, CornersAxisAligned) {
  const Obb o = make_obb(0, 0, 0, 2, 1);
  const auto c = o.corners();
  // Contains extremes.
  double max_x = -1e9, max_y = -1e9;
  for (const auto& p : c) {
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  EXPECT_NEAR(max_x, 2.0, 1e-12);
  EXPECT_NEAR(max_y, 1.0, 1e-12);
}

TEST(Obb, Contains) {
  const Obb o = make_obb(1, 1, M_PI / 2, 2, 1);
  EXPECT_TRUE(o.contains({1, 1}));
  EXPECT_TRUE(o.contains({1, 2.9}));   // along rotated length axis
  EXPECT_FALSE(o.contains({2.5, 1}));  // outside rotated width axis
}

TEST(ObbIntersect, OverlappingAndSeparated) {
  const Obb a = make_obb(0, 0, 0, 2, 1);
  EXPECT_TRUE(obb_intersect(a, make_obb(3.5, 0, 0, 2, 1)));
  EXPECT_FALSE(obb_intersect(a, make_obb(4.5, 0, 0, 2, 1)));
  EXPECT_TRUE(obb_intersect(a, a));
}

TEST(ObbIntersect, RotationMatters) {
  const Obb a = make_obb(0, 0, 0, 2, 0.4);
  // A thin box rotated 90 deg at x = 2.2 overlaps only via its length.
  EXPECT_FALSE(obb_intersect(a, make_obb(2.7, 0, 0, 0.2, 0.2)));
  EXPECT_TRUE(obb_intersect(a, make_obb(2.2, 0, M_PI / 2, 2, 0.4)));
}

TEST(ObbDistance, ZeroWhenTouchingPositiveApart) {
  const Obb a = make_obb(0, 0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(obb_distance(a, make_obb(1.5, 0, 0, 1, 1)), 0.0);
  EXPECT_NEAR(obb_distance(a, make_obb(5, 0, 0, 1, 1)), 3.0, 1e-9);
}

TEST(PointSegmentDistance, EndpointsAndInterior) {
  EXPECT_NEAR(point_segment_distance({0, 1}, {0, 0}, {2, 0}), 1.0, 1e-12);
  EXPECT_NEAR(point_segment_distance({-1, 0}, {0, 0}, {2, 0}), 1.0, 1e-12);
  EXPECT_NEAR(point_segment_distance({3, 4}, {0, 0}, {0, 0}), 5.0, 1e-12);
}

TEST(SegmentsIntersect, CrossTouchDisjoint) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  // Collinear overlapping.
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
}

TEST(Polyline, LengthAndPointAt) {
  const Polyline line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(line.length(), 7.0);
  EXPECT_EQ(line.point_at(0.0), Vec2(0, 0));
  EXPECT_EQ(line.point_at(3.0), Vec2(3, 0));
  const Vec2 mid = line.point_at(5.0);
  EXPECT_NEAR(mid.x, 3.0, 1e-12);
  EXPECT_NEAR(mid.y, 2.0, 1e-12);
  // Clamped beyond the ends.
  EXPECT_EQ(line.point_at(100.0), Vec2(3, 4));
  EXPECT_EQ(line.point_at(-5.0), Vec2(0, 0));
}

TEST(Polyline, TangentAndHeading) {
  const Polyline line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_NEAR(line.heading_at(1.0), 0.0, 1e-12);
  EXPECT_NEAR(line.heading_at(5.0), M_PI / 2, 1e-12);
}

TEST(Polyline, ProjectAndLateralOffset) {
  const Polyline line({{0, 0}, {10, 0}});
  EXPECT_NEAR(line.project({4.0, 3.0}), 4.0, 1e-12);
  EXPECT_NEAR(line.lateral_offset({4.0, 3.0}), 3.0, 1e-12);   // left positive
  EXPECT_NEAR(line.lateral_offset({4.0, -2.0}), -2.0, 1e-12);
  EXPECT_NEAR(line.project({-3.0, 1.0}), 0.0, 1e-12);  // clamps to start
}

TEST(Polyline, Append) {
  Polyline line;
  line.append({0, 0});
  line.append({1, 0});
  line.append({1, 1});
  EXPECT_DOUBLE_EQ(line.length(), 2.0);
  EXPECT_EQ(line.size(), 3u);
}

class PolylineProjectProperty : public ::testing::TestWithParam<double> {};

TEST_P(PolylineProjectProperty, ProjectionIsNearestPoint) {
  const Polyline line({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const double s = GetParam();
  const Vec2 on_line = line.point_at(s);
  // Projection of a point on the line recovers (approximately) s.
  EXPECT_NEAR(line.project(on_line), s, 1e-9);
  // Offsetting perpendicular keeps the projection.
  const Vec2 off = on_line + line.tangent_at(s).perp() * 0.5;
  EXPECT_NEAR(line.project(off), s, 0.51);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolylineProjectProperty,
                         ::testing::Values(0.5, 3.0, 9.0, 12.0, 17.5, 24.0,
                                           29.0));

TEST(Polyline, CurvatureOfCircleApproximation) {
  // Approximate a radius-10 circle arc; curvature should be ~0.1.
  std::vector<Vec2> pts;
  for (int i = 0; i <= 60; ++i) {
    const double a = i * M_PI / 60.0;
    pts.push_back({10.0 * std::cos(a), 10.0 * std::sin(a)});
  }
  const Polyline arc(pts);
  EXPECT_NEAR(std::abs(arc.curvature_at(arc.length() / 2)), 0.1, 0.02);
}

TEST(Polyline, StraightHasZeroCurvature) {
  const Polyline line({{0, 0}, {5, 0}, {10, 0}, {20, 0}});
  EXPECT_NEAR(line.curvature_at(10.0), 0.0, 1e-9);
}

}  // namespace
}  // namespace dav
