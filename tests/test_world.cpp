#include <gtest/gtest.h>

#include "sim/world.h"

namespace dav {
namespace {

constexpr double kDt = 0.05;

Scenario simple_scenario(double lead_gap = 50.0) {
  Scenario sc;
  sc.id = ScenarioId::kLeadSlowdown;
  sc.map = RoadMap(Polyline({{0, 0}, {800, 0}}), 3.5, 1, 0);
  sc.ego_start_s = 10.0;
  sc.ego_start_speed = 10.0;
  sc.duration_sec = 30.0;
  IdmParams idm;
  idm.desired_speed = 10.0;
  sc.npcs.emplace_back(1, 10.0 + lead_gap, 0.0, 10.0, idm);
  return sc;
}

TEST(World, InitialStateMatchesScenario) {
  World world(simple_scenario());
  EXPECT_NEAR(world.ego().pose.pos.x, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(world.ego().v, 10.0);
  EXPECT_NEAR(world.ego_route_s(), 10.0, 1e-9);
  EXPECT_EQ(world.step_count(), 0);
  EXPECT_EQ(world.trajectory().size(), 1u);  // initial sample
}

TEST(World, StepAdvancesTimeAndTrajectory) {
  World world(simple_scenario());
  world.step({0.5, 0.0, 0.0}, kDt);
  EXPECT_NEAR(world.time(), kDt, 1e-12);
  EXPECT_EQ(world.step_count(), 1);
  EXPECT_EQ(world.trajectory().size(), 2u);
}

TEST(World, CvipTracksLeadGap) {
  World world(simple_scenario(30.0));
  // CVIP is bumper-to-bumper: 30 - half lengths (2.25 + 2.25).
  EXPECT_NEAR(world.cvip(), 30.0 - 4.5, 0.1);
}

TEST(World, CvipInfiniteWithoutLead) {
  Scenario sc = simple_scenario();
  sc.npcs.clear();
  World world(std::move(sc));
  EXPECT_GT(world.cvip(), 1e9);
}

TEST(World, CvipIgnoresAdjacentLane) {
  Scenario sc = simple_scenario();
  sc.npcs.clear();
  IdmParams idm;
  sc.npcs.emplace_back(1, 40.0, 3.5, 10.0, idm);
  World world(std::move(sc));
  EXPECT_GT(world.cvip(), 1e9);
}

TEST(World, CollisionDetectedAndTimed) {
  World world(simple_scenario(8.0));
  // Full throttle into the lead.
  int steps = 0;
  while (!world.flags().collision && steps < 600) {
    world.step({1.0, 0.0, 0.0}, kDt);
    ++steps;
  }
  EXPECT_TRUE(world.flags().collision);
  EXPECT_GE(world.first_collision_time(), 0.0);
  // The run ends shortly after a collision.
  int extra = 0;
  while (!world.done() && extra < 200) {
    world.step({0.0, 1.0, 0.0}, kDt);
    ++extra;
  }
  EXPECT_TRUE(world.done());
}

TEST(World, SpeedingFlag) {
  Scenario sc = simple_scenario();
  sc.npcs.clear();
  sc.map.add_speed_limit({0.0, 1e9, 5.0});
  World world(std::move(sc));  // starts at 10 m/s > 5 * 1.15
  world.step({1.0, 0.0, 0.0}, kDt);
  EXPECT_TRUE(world.flags().speeding);
}

TEST(World, OffRoadFlag) {
  Scenario sc = simple_scenario();
  sc.npcs.clear();
  World world(std::move(sc));
  for (int i = 0; i < 400 && !world.flags().off_road; ++i) {
    world.step({0.5, 0.0, -1.0}, kDt);  // hard right off the road
  }
  EXPECT_TRUE(world.flags().off_road);
}

TEST(World, RedLightViolation) {
  Scenario sc = simple_scenario();
  sc.npcs.clear();
  // Permanently red light ahead of the ego.
  sc.map.add_traffic_light({40.0, 0.0, 0.0, 100.0, 0.0});
  World world(std::move(sc));
  for (int i = 0; i < 200 && !world.flags().red_light_violation; ++i) {
    world.step({0.8, 0.0, 0.0}, kDt);
  }
  EXPECT_TRUE(world.flags().red_light_violation);
}

TEST(World, GreenLightNoViolation) {
  Scenario sc = simple_scenario();
  sc.npcs.clear();
  sc.map.add_traffic_light({40.0, 1000.0, 2.0, 8.0, 0.0});  // long green
  World world(std::move(sc));
  for (int i = 0; i < 200; ++i) world.step({0.8, 0.0, 0.0}, kDt);
  EXPECT_FALSE(world.flags().red_light_violation);
}

TEST(World, NpcsStopAtRedLights) {
  Scenario sc = simple_scenario();
  sc.npcs.clear();
  IdmParams idm;
  idm.desired_speed = 10.0;
  sc.npcs.emplace_back(1, 20.0, 0.0, 10.0, idm);
  sc.map.add_traffic_light({60.0, 0.0, 0.0, 1000.0, 0.0});  // always red
  World world(std::move(sc));
  for (int i = 0; i < 400; ++i) world.step({0.0, 1.0, 0.0}, kDt);
  const auto& npc = world.npcs()[0];
  EXPECT_LT(npc.s(), 60.0);
  EXPECT_LT(npc.speed(), 0.5);
}

TEST(World, NpcNpcCollisionCrashesBoth) {
  Scenario sc = simple_scenario();
  sc.npcs.clear();
  IdmParams idm;
  idm.desired_speed = 12.0;
  // Two NPCs laterally merging into each other.
  sc.npcs.emplace_back(1, 40.0, 0.0, 10.0, idm);
  NpcVehicle merger(2, 38.0, 3.5, 12.0, idm);
  merger.add_event({NpcEvent::Trigger::kAtTime, 0.5,
                    NpcEvent::Action::kLaneChange, 0.0, 1.0});
  sc.npcs.push_back(merger);
  World world(std::move(sc));
  for (int i = 0; i < 200; ++i) world.step({0.0, 1.0, 0.0}, kDt);
  EXPECT_TRUE(world.npcs()[0].crashed());
  EXPECT_TRUE(world.npcs()[1].crashed());
}

TEST(World, DoneAtDurationOrRouteEnd) {
  Scenario sc = simple_scenario();
  sc.npcs.clear();
  sc.duration_sec = 0.2;
  World world(std::move(sc));
  EXPECT_FALSE(world.done());
  for (int i = 0; i < 5; ++i) world.step({0.0, 0.0, 0.0}, kDt);
  EXPECT_TRUE(world.done());
}

TEST(World, EgoLateralSignedLeftPositive) {
  World world(simple_scenario());
  for (int i = 0; i < 40; ++i) world.step({0.3, 0.0, 0.6}, kDt);
  EXPECT_GT(world.ego_lateral(), 0.0);
}

}  // namespace
}  // namespace dav
