// Run-record serialization and write-ahead journal (campaign resume layer).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "campaign/journal.h"
#include "campaign/serialize.h"
#include "core/threshold_lut.h"

namespace dav {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// A RunResult with every field populated, including values that break text
/// round-trips (NaN, -0.0, denormals) — the serializer must be bit-exact.
RunResult full_result() {
  RunResult r;
  r.scenario = ScenarioId::kGhostCutIn;
  r.mode = AgentMode::kDuplicate;
  r.fault.kind = FaultModelKind::kPermanent;
  r.fault.domain = FaultDomain::kCpu;
  r.fault.target_dyn_index = 0xdeadbeefcafeull;
  r.fault.target_opcode = 17;
  r.fault.bit = 31;
  r.run_seed = 0x123456789abcdef0ull;
  r.outcome = FaultOutcome::kSdc;
  r.fault_activated = true;
  r.collision = true;
  r.collision_time = 12.0499999999999998;
  r.flags.collision = true;
  r.flags.red_light_violation = true;
  r.flags.speeding = false;
  r.flags.off_road = true;
  r.trajectory.push({-0.0, std::numeric_limits<double>::denorm_min()});
  r.trajectory.push({1.0 / 3.0, -17.25});
  r.duration = 29.95;
  r.scheduled_duration = 30.0;
  r.dt = 0.05;
  r.steps = 599;
  r.due = true;
  r.due_time = 3.14159;
  r.due_source = DueSource::kHangWatchdog;
  r.online_alarmed = true;
  r.online_alarm_time = 2.5;
  r.recovery.attempts = 2;
  r.recovery.completed = 1;
  r.recovery.escalated = true;
  r.recovery.first_detector_alarm_time = 2.5;
  RecoveryEvent e;
  e.suspect = 1;
  e.trigger = DueSource::kEngineCrash;
  e.alarm_time = 2.5;
  e.restart_time = 2.6;
  e.rejoin_time = 3.1;
  e.alarm_tick = 50;
  e.restart_tick = 52;
  e.rejoin_tick = 62;
  r.recovery.events.push_back(e);
  r.recovery.nominal_ticks = 500;
  r.recovery.probe_ticks = 10;
  r.recovery.degraded_ticks = 80;
  r.recovery.failback_ticks = 9;
  StepObservation o;
  o.time = 0.05;
  o.state.pose.pos = {4.0, -2.0};
  o.state.pose.yaw = 0.125;
  o.state.v = 13.9;
  o.state.a = -1.5;
  o.state.omega = 0.01;
  o.state.alpha = -0.002;
  o.delta.throttle = std::numeric_limits<double>::quiet_NaN();
  o.delta.brake = 0.25;
  o.delta.steer = -0.0;
  r.observations.push_back(o);
  r.time_trace = {0.05, 0.1};
  r.throttle_trace = {0.5, 0.0};
  r.brake_trace = {0.0, 1.0};
  r.steer_trace = {-0.01, 0.01};
  r.cvip_trace = {45.0, 44.2};
  r.acting_agent_trace = {0, 1, -1};
  r.gpu_instructions = 1ull << 40;
  r.cpu_instructions = 77;
  r.agent_state_bytes = 4096;
  r.sensor_frame_bytes = 96 * 72 * 3;
  return r;
}

TEST(RunRecordSerialization, RoundTripIsBitExact) {
  const RunResult a = full_result();
  const std::string bytes = serialize_run_result(a);
  const RunResult b = deserialize_run_result(bytes);
  // Bit-exactness via re-serialization: equal bytes iff every field (incl.
  // the NaN and the signed zero) survived exactly.
  EXPECT_EQ(serialize_run_result(b), bytes);
  EXPECT_EQ(b.scenario, a.scenario);
  EXPECT_EQ(b.run_seed, a.run_seed);
  EXPECT_EQ(b.outcome, a.outcome);
  EXPECT_EQ(b.trajectory.size(), a.trajectory.size());
  EXPECT_EQ(b.observations.size(), a.observations.size());
  EXPECT_TRUE(std::isnan(b.observations[0].delta.throttle));
  EXPECT_TRUE(std::signbit(b.observations[0].delta.steer));
  EXPECT_EQ(b.recovery.events.size(), 1u);
  EXPECT_EQ(b.recovery.events[0].rejoin_tick, 62);
  EXPECT_EQ(b.gpu_instructions, a.gpu_instructions);
}

TEST(RunRecordSerialization, DefaultResultRoundTrips) {
  const RunResult a;
  const std::string bytes = serialize_run_result(a);
  EXPECT_EQ(serialize_run_result(deserialize_run_result(bytes)), bytes);
}

TEST(RunRecordSerialization, TruncatedAndCorruptRecordsThrow) {
  const std::string bytes = serialize_run_result(full_result());
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(deserialize_run_result(bytes.substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }
  EXPECT_THROW(deserialize_run_result(bytes + "x"), std::runtime_error);
  std::string wrong_version = bytes;
  wrong_version[0] = static_cast<char>(kRunRecordVersion + 1);
  EXPECT_THROW(deserialize_run_result(wrong_version), std::runtime_error);
}

TEST(RunConfigDigest, SensitiveToOutcomeDeterminingFields) {
  const RunConfig base;
  const std::uint64_t d0 = run_config_digest(base);
  EXPECT_EQ(run_config_digest(base), d0) << "digest must be stable";

  RunConfig seed = base;
  seed.run_seed += 1;
  EXPECT_NE(run_config_digest(seed), d0);

  RunConfig fault = base;
  fault.fault.kind = FaultModelKind::kTransient;
  fault.fault.target_dyn_index = 123;
  EXPECT_NE(run_config_digest(fault), d0);

  RunConfig scen = base;
  scen.scenario = ScenarioId::kFrontAccident;
  EXPECT_NE(run_config_digest(scen), d0);

  RunConfig mode = base;
  mode.mode = AgentMode::kSingle;
  EXPECT_NE(run_config_digest(mode), d0);
}

TEST(RunConfigDigest, LutContentsArePartOfTheIdentity) {
  // Two differently trained LUTs must hash differently: replaying a journal
  // record trained with other thresholds would silently change alarms.
  ThresholdLut a;
  ThresholdLut b;
  VehicleState s;
  s.v = 10.0;
  b.observe(s, ActuationDelta{0.4, 0.3, 0.2});
  RunConfig ca;
  ca.online_lut = &a;
  RunConfig cb;
  cb.online_lut = &b;
  EXPECT_NE(run_config_digest(ca), run_config_digest(cb));
  RunConfig none;
  EXPECT_NE(run_config_digest(ca), run_config_digest(none));
}

TEST(Journal, MissingFileIsAFreshStart) {
  const JournalLoad load = load_journal(temp_path("jrnl_missing.bin"), 42);
  EXPECT_FALSE(load.existed);
  EXPECT_TRUE(load.records.empty());
  EXPECT_EQ(load.torn_bytes, 0u);
}

TEST(Journal, WriteThenLoadRoundTrips) {
  const std::string path = temp_path("jrnl_roundtrip.bin");
  const std::string p1 = serialize_run_result(full_result());
  const std::string p2 = "arbitrary-bytes\x00\x01\x02";
  {
    JournalWriter w(path, /*fingerprint=*/7, JournalLoad{});
    w.append(11, p1);
    w.append(22, p2);
    w.close();
  }
  const JournalLoad load = load_journal(path, 7);
  EXPECT_TRUE(load.existed);
  EXPECT_EQ(load.torn_bytes, 0u);
  ASSERT_EQ(load.records.size(), 2u);
  EXPECT_EQ(load.records.at(11), p1);
  EXPECT_EQ(load.records.at(22), p2);
}

TEST(Journal, FingerprintMismatchThrows) {
  const std::string path = temp_path("jrnl_fingerprint.bin");
  {
    JournalWriter w(path, 7, JournalLoad{});
    w.append(1, "payload");
  }
  EXPECT_THROW(load_journal(path, 8), std::runtime_error);
}

TEST(Journal, NonJournalFileThrows) {
  const std::string path = temp_path("jrnl_garbage.bin");
  std::ofstream(path) << "this is not a journal at all, not even close";
  EXPECT_THROW(load_journal(path, 7), std::runtime_error);
}

TEST(Journal, TornTailIsDiscardedAndTruncatedOnResume) {
  const std::string path = temp_path("jrnl_torn.bin");
  {
    JournalWriter w(path, 7, JournalLoad{});
    w.append(11, "first-record");
    w.append(22, "second-record");
  }
  // Simulate a supervisor killed mid-append: chop the last record in half.
  std::uint64_t full_size = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    full_size = static_cast<std::uint64_t>(in.tellg());
  }
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes(static_cast<std::size_t>(full_size) - 7, '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const JournalLoad load = load_journal(path, 7);
  ASSERT_EQ(load.records.size(), 1u);
  EXPECT_EQ(load.records.at(11), "first-record");
  EXPECT_GT(load.torn_bytes, 0u);

  // Resuming truncates the torn tail and appends cleanly after it.
  {
    JournalWriter w(path, 7, load);
    w.append(33, "third-record");
  }
  const JournalLoad reload = load_journal(path, 7);
  EXPECT_EQ(reload.torn_bytes, 0u);
  ASSERT_EQ(reload.records.size(), 2u);
  EXPECT_EQ(reload.records.at(11), "first-record");
  EXPECT_EQ(reload.records.at(33), "third-record");
}

TEST(Journal, CorruptChecksumStopsTheParse) {
  const std::string path = temp_path("jrnl_corrupt.bin");
  {
    JournalWriter w(path, 7, JournalLoad{});
    w.append(11, "first-record");
    w.append(22, "second-record");
  }
  // Flip one byte inside the FIRST record's payload: both it and its
  // successor must be discarded (framing provenance is lost mid-file).
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  bytes[8 + 4 + 8 + 4 + 8 + 4 + 8 + 2] ^= 0x40;  // header + frame + 2 bytes in
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const JournalLoad load = load_journal(path, 7);
  EXPECT_TRUE(load.records.empty());
  EXPECT_GT(load.torn_bytes, 0u);
}

TEST(Journal, DisabledWriterRejectsAppends) {
  JournalWriter w;
  EXPECT_FALSE(w.enabled());
  EXPECT_THROW(w.append(1, "x"), std::runtime_error);
}

}  // namespace
}  // namespace dav
