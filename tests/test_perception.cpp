#include <gtest/gtest.h>

#include <cmath>

#include "agent/perception.h"
#include "sensors/sensor_rig.h"
#include "sim/scenario.h"

namespace dav {
namespace {

struct Harness {
  World world;
  SensorRig rig;
  GpuEngine eng;

  explicit Harness(Scenario sc, std::uint64_t seed = 7)
      : world(std::move(sc)), rig(front_camera_rig(), seed) {
    eng.configure({}, 0);
  }

  PerceptionOutput run_perception() {
    PerceptionConfig cfg;
    cfg.center_cam = front_camera_rig()[1];
    Perception perception(eng, cfg);
    // Two frames so the EMA warms up.
    perception.process(rig.capture(world, 0).cameras);
    return perception.process(rig.capture(world, 1).cameras);
  }
};

/// Lead vehicle at a chosen bumper gap; perception distance should track the
/// geometric distance to the rear face within ~20%.
class LeadDistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(LeadDistanceSweep, ObstacleDistanceTracksGroundTruth) {
  const double gap = GetParam();
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  IdmParams idm;
  sc.npcs.emplace_back(1, sc.ego_start_s + gap, 0.0, 10.0, idm);
  Harness setup(std::move(sc));
  const PerceptionOutput p = setup.run_perception();
  ASSERT_TRUE(p.obstacle_valid) << "gap " << gap;
  const double rear_face = gap - 2.25;  // half vehicle length
  EXPECT_NEAR(p.obstacle_distance, rear_face, rear_face * 0.25 + 1.5)
      << "gap " << gap;
}

// Beyond ~40 m the 72-row camera's ground-plane resolution runs out (the
// second-from-horizon row already spans depths 34-67 m), so the sweep stops
// at the sensor's reliable range.
INSTANTIATE_TEST_SUITE_P(Gaps, LeadDistanceSweep,
                         ::testing::Values(10.0, 15.0, 20.0, 25.0, 30.0,
                                           40.0));

TEST(Perception, NoObstacleOnEmptyRoad) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  Harness setup(std::move(sc));
  const PerceptionOutput p = setup.run_perception();
  EXPECT_FALSE(p.obstacle_valid);
  EXPECT_GT(p.obstacle_distance, 150.0);
}

TEST(Perception, AdjacentLaneVehicleNotInPath) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  IdmParams idm;
  sc.npcs.emplace_back(1, sc.ego_start_s + 20.0, 3.5, 10.0, idm);
  Harness setup(std::move(sc));
  const PerceptionOutput p = setup.run_perception();
  // The adjacent-lane vehicle must not read as a close in-path obstacle.
  EXPECT_GT(p.obstacle_distance, 30.0);
}

TEST(Perception, RedLightRangedViaHead) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  const double light_s = sc.ego_start_s + 40.0;
  sc.map.add_traffic_light({light_s, 0.0, 0.0, 10000.0, 0.0});
  Harness setup(std::move(sc));
  const PerceptionOutput p = setup.run_perception();
  ASSERT_TRUE(p.obstacle_valid);
  EXPECT_NEAR(p.obstacle_distance, 40.0, 12.0);
}

TEST(Perception, GreenLightIgnored) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  sc.map.add_traffic_light({sc.ego_start_s + 40.0, 10000.0, 1.0, 1.0, 0.0});
  Harness setup(std::move(sc));
  const PerceptionOutput p = setup.run_perception();
  EXPECT_FALSE(p.obstacle_valid);
}

TEST(Perception, LaneOffsetNearZeroWhenCentered) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  Harness setup(std::move(sc));
  const PerceptionOutput p = setup.run_perception();
  EXPECT_NEAR(p.lane_offset, 0.0, 0.35);
  EXPECT_NEAR(p.heading_slope, 0.0, 0.08);
}

TEST(Perception, GainIsOneFaultFree) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  Harness setup(std::move(sc));
  EXPECT_EQ(setup.run_perception().gain, 1.0);
}

TEST(Perception, ResetClearsState) {
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  Harness setup(std::move(sc));
  PerceptionConfig cfg;
  cfg.center_cam = front_camera_rig()[1];
  Perception perception(setup.eng, cfg);
  const auto frame = setup.rig.capture(setup.world, 0);
  const PerceptionOutput first = perception.process(frame.cameras);
  perception.process(frame.cameras);
  perception.reset();
  const PerceptionOutput after_reset = perception.process(frame.cameras);
  EXPECT_NEAR(after_reset.obstacle_distance, first.obstacle_distance, 1e-3);
}

TEST(Perception, StateBytesNonTrivial) {
  GpuEngine eng;
  eng.configure({}, 0);
  PerceptionConfig cfg;
  cfg.center_cam = front_camera_rig()[1];
  Perception perception(eng, cfg);
  EXPECT_GT(perception.state_bytes(), sizeof(Perception) / 2);
}

/// Property: lane offset estimate follows the ego's actual lateral offset.
class LaneOffsetSweep : public ::testing::TestWithParam<double> {};

TEST_P(LaneOffsetSweep, TracksActualOffset) {
  const double lateral = GetParam();
  Scenario sc = make_scenario(ScenarioId::kLeadSlowdown);
  sc.npcs.clear();
  World world(std::move(sc));
  // Teleport the ego laterally by simulating with an offset start: rebuild
  // scenario with shifted start is complex; instead steer-free run and use
  // project_npc-free approach: construct a custom world via scenario map and
  // inject lateral by stepping with steer until reached is flaky — use the
  // fact that perception measures lane center in the EGO frame. We emulate
  // by moving the ego through World steps is unreliable; accept centered
  // case plus sign checks at +-0.8 m via short steering bursts.
  SensorRig rig(front_camera_rig(), 7);
  GpuEngine eng;
  eng.configure({}, 0);
  PerceptionConfig cfg;
  cfg.center_cam = front_camera_rig()[1];
  Perception perception(eng, cfg);
  // Steer toward the requested lateral offset with a crude P controller.
  for (int i = 0; i < 160; ++i) {
    const double err = lateral - world.ego_lateral();
    const double head =
        wrap_angle(world.map().heading_at(world.ego_route_s()) -
                   world.ego().pose.yaw);
    Actuation cmd;
    cmd.throttle = 0.3;
    cmd.steer = clamp(0.8 * err + 2.0 * head, -1.0, 1.0);
    world.step(cmd, 0.05);
  }
  ASSERT_NEAR(world.ego_lateral(), lateral, 0.3);
  perception.process(rig.capture(world, 0).cameras);
  const PerceptionOutput p = perception.process(rig.capture(world, 1).cameras);
  // Lane center (at lateral 0) relative to ego: -ego_lateral.
  EXPECT_NEAR(p.lane_offset, -world.ego_lateral(), 0.45);
}

INSTANTIATE_TEST_SUITE_P(Offsets, LaneOffsetSweep,
                         ::testing::Values(-0.8, -0.4, 0.0, 0.4, 0.8));

}  // namespace
}  // namespace dav
