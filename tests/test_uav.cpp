#include <gtest/gtest.h>

#include "uav/uav.h"

namespace dav::uav {
namespace {

TEST(UavPhysics, HoverThrustHolds) {
  UavState s;
  s.z = 10.0;
  UavParams p;
  for (int i = 0; i < 100; ++i) {
    s = step_uav(s, {0.5, 0.0}, p, 0.0, 0.05);
  }
  EXPECT_NEAR(s.z, 10.0, 0.1);
  EXPECT_NEAR(s.vz, 0.0, 0.05);
}

TEST(UavPhysics, FullThrustClimbs) {
  UavState s;
  s.z = 5.0;
  UavParams p;
  for (int i = 0; i < 40; ++i) s = step_uav(s, {1.0, 0.0}, p, 0.0, 0.05);
  EXPECT_GT(s.z, 7.0);
  EXPECT_GT(s.vz, 0.0);
}

TEST(UavPhysics, GroundIsFloor) {
  UavState s;
  s.z = 0.5;
  UavParams p;
  for (int i = 0; i < 100; ++i) s = step_uav(s, {0.0, 0.0}, p, 0.0, 0.05);
  EXPECT_DOUBLE_EQ(s.z, 0.0);
  EXPECT_GE(s.vz, 0.0);
}

TEST(UavPhysics, PitchAccelerates) {
  UavState s;
  UavParams p;
  for (int i = 0; i < 100; ++i) s = step_uav(s, {0.5, 1.0}, p, 0.0, 0.05);
  EXPECT_GT(s.vx, 3.0);
  EXPECT_GT(s.x, 5.0);
}

TEST(UavPhysics, WindPushesDown) {
  UavState calm;
  calm.z = 10.0;
  UavState windy = calm;
  UavParams p;
  for (int i = 0; i < 40; ++i) {
    calm = step_uav(calm, {0.5, 0.0}, p, 0.0, 0.05);
    windy = step_uav(windy, {0.5, 0.0}, p, 2.0, 0.05);
  }
  EXPECT_LT(windy.z, calm.z - 0.5);
}

TEST(UavMissionProfile, ClimbCruiseDescend) {
  UavMission m;
  EXPECT_NEAR(m.ref_altitude(0.0, 0.0), 0.0, 1e-9);
  EXPECT_NEAR(m.ref_altitude(100.0, m.duration_sec * 0.5), m.cruise_alt,
              1e-9);
  EXPECT_LT(m.ref_altitude(m.out_distance + 50.0, m.duration_sec * 0.9),
            m.cruise_alt);
}

TEST(WindGustModel, TriangularPulse) {
  WindGust g;
  EXPECT_DOUBLE_EQ(g.accel_at(g.t_start - 1.0), 0.0);
  EXPECT_DOUBLE_EQ(g.accel_at(g.t_start + g.duration + 1.0), 0.0);
  EXPECT_NEAR(g.accel_at(g.t_start + g.duration / 2), g.peak_accel, 1e-9);
}

TEST(UavGolden, AllModesFlyTheMission) {
  for (AgentMode mode : {AgentMode::kSingle, AgentMode::kRoundRobin,
                         AgentMode::kDuplicate}) {
    UavRunConfig cfg;
    cfg.mode = mode;
    cfg.run_seed = 7;
    const UavRunResult r = run_uav_experiment(cfg);
    EXPECT_FALSE(r.crashed) << to_string(mode);
    EXPECT_FALSE(r.due) << to_string(mode);
    EXPECT_LT(r.max_alt_error, 6.0) << to_string(mode);
    EXPECT_GT(r.observations.size(), 100u) << to_string(mode);
  }
}

TEST(UavGolden, RoundRobinDivergenceBounded) {
  UavRunConfig cfg;
  cfg.run_seed = 3;
  const UavRunResult r = run_uav_experiment(cfg);
  DivergenceSignal sig(3);
  double worst = 0.0;
  for (const auto& o : r.observations) {
    sig.push(o.delta);
    if (sig.full()) {
      const auto sm = sig.smoothed();
      worst = std::max({worst, sm.throttle, sm.steer});
    }
  }
  EXPECT_LT(worst, 0.25);
}

TEST(UavFault, PermanentCpuDataFaultDiverges) {
  UavRunConfig cfg;
  cfg.run_seed = 5;
  cfg.fault.kind = FaultModelKind::kPermanent;
  cfg.fault.domain = FaultDomain::kCpu;
  cfg.fault.target_opcode = static_cast<int>(CpuOpcode::kFma);
  cfg.fault.bit = 22;
  const UavRunResult r = run_uav_experiment(cfg);
  if (!r.due) {
    // Survived the lethality draw: either visible divergence or an altitude
    // excursion (the behavior a detector must catch).
    DivergenceSignal sig(3);
    double worst = 0.0;
    for (const auto& o : r.observations) {
      sig.push(o.delta);
      if (sig.full()) {
        const auto sm = sig.smoothed();
        worst = std::max({worst, sm.throttle, sm.steer});
      }
    }
    EXPECT_TRUE(worst > 0.2 || r.max_alt_error > 6.0 || r.crashed);
  } else {
    SUCCEED();  // platform-detected DUE is also a valid manifestation
  }
}

TEST(UavFault, MemoryClassFaultIsUsuallyLethal) {
  int dues = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    UavRunConfig cfg;
    cfg.run_seed = seed;
    cfg.fault.kind = FaultModelKind::kPermanent;
    cfg.fault.domain = FaultDomain::kCpu;
    cfg.fault.target_opcode = static_cast<int>(CpuOpcode::kLoad);
    cfg.fault.bit = 3;
    dues += run_uav_experiment(cfg).due;
  }
  EXPECT_GE(dues, 4);
}

}  // namespace
}  // namespace dav::uav
